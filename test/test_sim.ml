(* Unit and property tests of the simulation substrate. *)

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Pid                                                                *)
(* ------------------------------------------------------------------ *)

let pid_tests =
  [
    tc "all" (fun () -> Alcotest.(check (list int)) "all 4" [ 0; 1; 2; 3 ] (Sim.Pid.all ~n:4));
    tc "others" (fun () ->
        Alcotest.(check (list int)) "others" [ 0; 2; 3 ] (Sim.Pid.others ~n:4 1));
    tc "ring successor wraps" (fun () ->
        Alcotest.(check int) "succ p4" 0 (Sim.Pid.next_in_ring ~n:4 3);
        Alcotest.(check int) "succ p1" 1 (Sim.Pid.next_in_ring ~n:4 0));
    tc "ring predecessor wraps" (fun () ->
        Alcotest.(check int) "pred p1" 3 (Sim.Pid.prev_in_ring ~n:4 0);
        Alcotest.(check int) "pred p3" 1 (Sim.Pid.prev_in_ring ~n:4 2));
    tc "pretty-printing is 1-based" (fun () ->
        Alcotest.(check string) "p1" "p1" (Sim.Pid.to_string 0);
        Alcotest.(check string) "set"
          "{p1, p3}"
          (Format.asprintf "%a" Sim.Pid.pp_set (Sim.Pid.set_of_list [ 2; 0 ])));
    tc "is_valid" (fun () ->
        Alcotest.(check bool) "0 ok" true (Sim.Pid.is_valid ~n:3 0);
        Alcotest.(check bool) "3 bad" false (Sim.Pid.is_valid ~n:3 3);
        Alcotest.(check bool) "-1 bad" false (Sim.Pid.is_valid ~n:3 (-1)));
  ]

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let rng_tests =
  [
    tc "determinism: same seed, same stream" (fun () ->
        let a = Sim.Rng.create ~seed:42 and b = Sim.Rng.create ~seed:42 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
        done);
    tc "different seeds differ" (fun () ->
        let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
        Alcotest.(check bool) "differ" true (Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b));
    tc "int is never negative (62-bit regression)" (fun () ->
        (* A 63-bit truncation bug once produced negative delays. *)
        let r = Sim.Rng.create ~seed:7 in
        for _ = 1 to 10_000 do
          let v = Sim.Rng.int r ~bound:1_000_000 in
          if v < 0 then Alcotest.failf "negative sample %d" v
        done);
    Test_util.qcheck ~count:200 ~name:"int_in_range stays in range"
      QCheck2.Gen.(tup2 (int_range (-1000) 1000) (int_range (-1000) 1000))
      (fun (a, b) ->
        let lo = min a b and hi = max a b in
        let r = Sim.Rng.create ~seed:(abs (a + (b * 1009))) in
        let v = Sim.Rng.int_in_range r ~lo ~hi in
        v >= lo && v <= hi);
    tc "float in [0,1)" (fun () ->
        let r = Sim.Rng.create ~seed:3 in
        for _ = 1 to 1000 do
          let f = Sim.Rng.float r in
          if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range %f" f
        done);
    tc "bool respects extreme probabilities" (fun () ->
        let r = Sim.Rng.create ~seed:4 in
        for _ = 1 to 100 do
          Alcotest.(check bool) "p=0" false (Sim.Rng.bool r ~p:0.0)
        done;
        let hits = ref 0 in
        for _ = 1 to 1000 do
          if Sim.Rng.bool r ~p:0.9 then incr hits
        done;
        Alcotest.(check bool) "p=0.9 mostly true" true (!hits > 800));
    tc "split yields an independent stream" (fun () ->
        let a = Sim.Rng.create ~seed:5 in
        let b = Sim.Rng.split a in
        let xs = List.init 10 (fun _ -> Sim.Rng.next_int64 a) in
        let ys = List.init 10 (fun _ -> Sim.Rng.next_int64 b) in
        Alcotest.(check bool) "streams differ" true (xs <> ys));
    tc "shuffle is a permutation" (fun () ->
        let r = Sim.Rng.create ~seed:6 in
        let a = Array.init 50 Fun.id in
        Sim.Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted);
    tc "choose picks a member" (fun () ->
        let r = Sim.Rng.create ~seed:8 in
        for _ = 1 to 100 do
          let x = Sim.Rng.choose r [ 1; 2; 3 ] in
          Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
        done);
    tc "choose on empty list raises" (fun () ->
        let r = Sim.Rng.create ~seed:9 in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty list") (fun () ->
            ignore (Sim.Rng.choose r [])));
    tc "int stays in range for bounds near max_int" (fun () ->
        (* Bounds this large reject roughly half the raw draws; the result
           must still land in [0, bound). *)
        let r = Sim.Rng.create ~seed:12 in
        let bound = (max_int / 2) + 1 in
        for _ = 1 to 1000 do
          let v = Sim.Rng.int r ~bound in
          if v < 0 || v >= bound then Alcotest.failf "out of range %d" v
        done);
    tc "int has no modulo bias (regression)" (fun () ->
        (* With bound = 3 * 2^60, plain [raw mod bound] over 62-bit raws
           maps the top 2^60 raws back onto [0, 2^60), making results below
           2^60 land with probability 1/2 instead of 1/3.  Rejection
           sampling restores 1/3; 10^4 samples separate the two cleanly. *)
        let r = Sim.Rng.create ~seed:13 in
        let bound = 3 * (1 lsl 60) in
        let cutoff = 1 lsl 60 in
        let hits = ref 0 in
        let samples = 10_000 in
        for _ = 1 to samples do
          if Sim.Rng.int r ~bound < cutoff then incr hits
        done;
        let fraction = float_of_int !hits /. float_of_int samples in
        if fraction < 0.28 || fraction > 0.39 then
          Alcotest.failf "biased: fraction below 2^60 = %.3f (want ~1/3, biased gives ~1/2)"
            fraction);
    tc "int rejects non-positive bounds" (fun () ->
        let r = Sim.Rng.create ~seed:14 in
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Sim.Rng.int r ~bound:0)));
  ]

(* ------------------------------------------------------------------ *)
(* Heap & Event_queue                                                 *)
(* ------------------------------------------------------------------ *)

let heap_tests =
  [
    tc "empty heap" (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        Alcotest.(check bool) "is_empty" true (Sim.Heap.is_empty h);
        Alcotest.(check (option int)) "peek" None (Sim.Heap.peek h);
        Alcotest.(check (option int)) "pop" None (Sim.Heap.pop h));
    tc "peek does not remove" (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        Sim.Heap.push h 5;
        Alcotest.(check (option int)) "peek" (Some 5) (Sim.Heap.peek h);
        Alcotest.(check int) "length" 1 (Sim.Heap.length h));
    tc "clear" (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
        Sim.Heap.clear h;
        Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h));
    Test_util.qcheck ~count:200 ~name:"heap sorts any list"
      QCheck2.Gen.(list_size (int_range 0 200) int)
      (fun xs ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        List.iter (Sim.Heap.push h) xs;
        let rec drain acc =
          match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        drain [] = List.sort compare xs);
    Test_util.qcheck ~count:100 ~name:"interleaved push/pop keeps order"
      QCheck2.Gen.(list_size (int_range 0 100) (option (int_range 0 1000)))
      (fun ops ->
        (* Some x = push x; None = pop.  Compare against a sorted-list model. *)
        let h = Sim.Heap.create ~cmp:Int.compare in
        let model = ref [] in
        List.for_all
          (fun op ->
            match op with
            | Some x ->
              Sim.Heap.push h x;
              model := List.sort compare (x :: !model);
              true
            | None -> (
              match (Sim.Heap.pop h, !model) with
              | None, [] -> true
              | Some x, y :: rest ->
                model := rest;
                x = y
              | Some _, [] | None, _ :: _ -> false))
          ops);
    Test_util.qcheck ~count:200 ~name:"a drained heap retains no slots"
      QCheck2.Gen.(list_size (int_range 0 200) (option (int_range 0 1000)))
      (fun ops ->
        (* Through any interleaving, live slots track the size exactly —
           i.e. pop really clears the vacated slot (the old implementation
           left popped elements aliased in the array) — and the O(1)
           occupancy counter never drifts from a full-array recount. *)
        let h = Sim.Heap.create ~cmp:Int.compare in
        List.for_all
          (fun op ->
            (match op with
            | Some x -> Sim.Heap.push h x
            | None -> ignore (Sim.Heap.pop h : int option));
            Sim.Heap.live_slots h = Sim.Heap.length h
            && Sim.Heap.scan_live_slots h = Sim.Heap.live_slots h)
          ops
        &&
        (let rec drain () = match Sim.Heap.pop h with None -> () | Some _ -> drain () in
         drain ();
         Sim.Heap.length h = 0 && Sim.Heap.live_slots h = 0
         && Sim.Heap.scan_live_slots h = 0));
    tc "pop clears the last slot when the heap empties" (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        Sim.Heap.push h 1;
        Alcotest.(check (option int)) "pop" (Some 1) (Sim.Heap.pop h);
        Alcotest.(check int) "no retained slot" 0 (Sim.Heap.live_slots h);
        Alcotest.(check int) "scan agrees" 0 (Sim.Heap.scan_live_slots h));
    tc "clear keeps a small capacity consistent with growth" (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        for i = 1 to 100 do
          Sim.Heap.push h i
        done;
        Alcotest.(check bool) "grew past 8" true (Sim.Heap.capacity h > 8);
        Sim.Heap.clear h;
        Alcotest.(check int) "small capacity" 8 (Sim.Heap.capacity h);
        Alcotest.(check int) "empty" 0 (Sim.Heap.length h);
        Alcotest.(check int) "no live slots" 0 (Sim.Heap.live_slots h);
        Alcotest.(check int) "scan agrees" 0 (Sim.Heap.scan_live_slots h);
        Sim.Heap.push h 7;
        Alcotest.(check (option int)) "usable after clear" (Some 7) (Sim.Heap.peek h));
    tc "shrink releases burst slack without dropping elements" (fun () ->
        let h = Sim.Heap.create ~cmp:Int.compare in
        for i = 1 to 1000 do
          Sim.Heap.push h i
        done;
        for _ = 1 to 990 do
          ignore (Sim.Heap.pop h : int option)
        done;
        Alcotest.(check bool) "slack" true (Sim.Heap.capacity h >= 1000);
        Sim.Heap.shrink h;
        Alcotest.(check int) "tight" 10 (Sim.Heap.capacity h);
        let rec drain acc =
          match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        Alcotest.(check (list int)) "all elements intact" [ 991; 992; 993; 994; 995; 996; 997; 998; 999; 1000 ]
          (drain []));
  ]

let event_queue_tests =
  [
    tc "pops by time" (fun () ->
        let q = Sim.Event_queue.create () in
        Sim.Event_queue.schedule q ~at:5 "b";
        Sim.Event_queue.schedule q ~at:1 "a";
        Sim.Event_queue.schedule q ~at:9 "c";
        Alcotest.(check (option (pair int string))) "a" (Some (1, "a")) (Sim.Event_queue.pop q);
        Alcotest.(check (option (pair int string))) "b" (Some (5, "b")) (Sim.Event_queue.pop q);
        Alcotest.(check (option (pair int string))) "c" (Some (9, "c")) (Sim.Event_queue.pop q));
    tc "same-instant events fire in scheduling order" (fun () ->
        let q = Sim.Event_queue.create () in
        List.iter (fun s -> Sim.Event_queue.schedule q ~at:3 s) [ "x"; "y"; "z" ];
        let order =
          List.init 3 (fun _ -> snd (Option.get (Sim.Event_queue.pop q)))
        in
        Alcotest.(check (list string)) "fifo" [ "x"; "y"; "z" ] order);
    tc "next_time" (fun () ->
        let q = Sim.Event_queue.create () in
        Alcotest.(check (option int)) "empty" None (Sim.Event_queue.next_time q);
        Sim.Event_queue.schedule q ~at:7 ();
        Alcotest.(check (option int)) "7" (Some 7) (Sim.Event_queue.next_time q));
    Test_util.qcheck ~count:200 ~name:"random schedules drain in sorted FIFO-stable order"
      QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 20))
      (fun times ->
        (* Schedule values tagged with their insertion index; the drain must
           be sorted by time and, among equal times, by insertion order. *)
        let q = Sim.Event_queue.create () in
        List.iteri (fun i at -> Sim.Event_queue.schedule q ~at (i, at)) times;
        let rec drain acc =
          match Sim.Event_queue.pop q with
          | None -> List.rev acc
          | Some (at, (i, at')) -> drain ((at, at', i) :: acc)
        in
        let drained = drain [] in
        List.length drained = List.length times
        && List.for_all (fun (at, at', _) -> at = at') drained
        &&
        let rec monotone = function
          | (t1, _, i1) :: ((t2, _, i2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && i1 < i2)) && monotone rest
          | [ _ ] | [] -> true
        in
        monotone drained);
  ]

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                        *)
(* ------------------------------------------------------------------ *)

(* Deltas that straddle every structural edge of the wheel: slot 0,
   level boundaries (32^k - 1, 32^k, 32^k + 1 for each level), the span
   edge where cells park in the overflow list, and multiples of the span
   (several overflow migrations before the cell becomes placeable). *)
let wheel_boundary_deltas =
  let span = Sim.Timer_wheel.span in
  [
    0; 1; 2; 30; 31; 32; 33; 63; 64; 1023; 1024; 1025; 32767; 32768; 32769;
    1_048_575; 1_048_576; 1_048_577; 33_554_431; 33_554_432; 33_554_433;
    span - 1; span; span + 1; (2 * span) - 1; 2 * span; 3 * span;
  ]

let timer_wheel_tests =
  [
    tc "structural constants" (fun () ->
        Alcotest.(check int) "span = 32^levels" Sim.Timer_wheel.span
          (int_of_float
             (float_of_int Sim.Timer_wheel.slots_per_level ** float_of_int Sim.Timer_wheel.levels)));
    tc "single cell pops at its deadline" (fun () ->
        let w = Sim.Timer_wheel.create () in
        Sim.Timer_wheel.add w ~cell:0 ~deadline:17 ~seq:3;
        Alcotest.(check int) "next_at" 17 (Sim.Timer_wheel.next_at w);
        Alcotest.(check int) "next_seq" 3 (Sim.Timer_wheel.next_seq w);
        Alcotest.(check int) "pop" 0 (Sim.Timer_wheel.pop w);
        Alcotest.(check bool) "empty" true (Sim.Timer_wheel.is_empty w));
    tc "equal deadlines pop in seq order regardless of insertion order" (fun () ->
        let w = Sim.Timer_wheel.create () in
        Sim.Timer_wheel.add w ~cell:0 ~deadline:5 ~seq:9;
        Sim.Timer_wheel.add w ~cell:1 ~deadline:5 ~seq:2;
        Sim.Timer_wheel.add w ~cell:2 ~deadline:5 ~seq:4;
        Alcotest.(check (list int)) "seq order" [ 1; 2; 0 ]
          (List.init 3 (fun _ -> Sim.Timer_wheel.pop w)));
    tc "boundary deltas drain in deadline order across cascades" (fun () ->
        (* One cell per structural edge, inserted far-to-near so every
           level and the overflow list are populated at once. *)
        let w = Sim.Timer_wheel.create () in
        let deltas = List.sort (fun a b -> compare b a) wheel_boundary_deltas in
        List.iteri (fun i d -> Sim.Timer_wheel.add w ~cell:i ~deadline:d ~seq:i) deltas;
        let expected = List.sort compare wheel_boundary_deltas in
        let popped =
          List.init (List.length deltas) (fun _ ->
              let at = Sim.Timer_wheel.next_at w in
              let cell = Sim.Timer_wheel.pop w in
              (at, cell))
        in
        Alcotest.(check (list int)) "deadline order" expected (List.map fst popped);
        Alcotest.(check bool) "drained" true (Sim.Timer_wheel.is_empty w));
    tc "adding behind the cursor raises" (fun () ->
        let w = Sim.Timer_wheel.create () in
        Sim.Timer_wheel.add w ~cell:0 ~deadline:10 ~seq:0;
        ignore (Sim.Timer_wheel.pop w : int);
        Alcotest.(check bool) "raises" true
          (try
             Sim.Timer_wheel.add w ~cell:1 ~deadline:9 ~seq:1;
             false
           with Invalid_argument _ -> true));
    Test_util.qcheck ~count:300 ~name:"wheel and heap queue pop the identical (time, seq) stream"
      QCheck2.Gen.(
        list_size (int_range 0 150)
          (option (tup2 (int_range 0 40) (int_range 0 80))))
      (fun ops ->
        (* Some (b, r): insert at now + delta where the delta is a boundary
           delta (b indexes the table) perturbed by a small random offset r;
           None: pop.  The same (deadline, payload) stream goes into the
           wheel and into an [Event_queue] (the binary heap); both must
           agree on every pop — same instant, same cell — and on emptiness.
           This is the merge soundness argument of HACKING.md in test form:
           either structure could carry the timers and the order would not
           change. *)
        let w = Sim.Timer_wheel.create () in
        let q = Sim.Event_queue.create () in
        let boundaries = Array.of_list wheel_boundary_deltas in
        let now = ref 0 in
        let next_cell = ref 0 in
        let pending = ref 0 in
        List.for_all
          (fun op ->
            match op with
            | Some (b, r) ->
              let delta = boundaries.(b mod Array.length boundaries) + r in
              let cell = !next_cell in
              incr next_cell;
              incr pending;
              let deadline = !now + delta in
              (* Event_queue's internal counter allocates the same seq the
                 wheel is handed, mirroring the engine's shared counter. *)
              let seq = Sim.Event_queue.alloc_seq q in
              ignore (seq : int);
              Sim.Event_queue.schedule q ~at:deadline cell;
              Sim.Timer_wheel.add w ~cell ~deadline ~seq;
              Sim.Timer_wheel.cardinal w = !pending
            | None ->
              if !pending = 0 then
                Sim.Timer_wheel.is_empty w && Sim.Event_queue.length q = 0
              else begin
                decr pending;
                let at_w = Sim.Timer_wheel.next_at w in
                let at_q = Sim.Event_queue.next_at q in
                let cell_w = Sim.Timer_wheel.pop w in
                let cell_q = Sim.Event_queue.pop_exn q in
                now := at_w;
                at_w = at_q && cell_w = cell_q
              end)
          ops
        &&
        (* Drain the rest: the tails must agree too. *)
        let rec drain () =
          if Sim.Timer_wheel.is_empty w then Sim.Event_queue.length q = 0
          else
            let at_w = Sim.Timer_wheel.next_at w in
            let at_q = Sim.Event_queue.next_at q in
            at_w = at_q
            && Sim.Timer_wheel.pop w = Sim.Event_queue.pop_exn q
            && drain ()
        in
        drain ());
    tc "shrink_capacity drops columns after the wheel empties" (fun () ->
        let w = Sim.Timer_wheel.create () in
        Sim.Timer_wheel.ensure_capacity w 1024;
        Alcotest.(check bool) "grew" true (Sim.Timer_wheel.capacity w >= 1024);
        Sim.Timer_wheel.add w ~cell:3 ~deadline:1 ~seq:0;
        ignore (Sim.Timer_wheel.pop w : int);
        Sim.Timer_wheel.shrink_capacity w 4;
        Alcotest.(check bool) "shrunk" true (Sim.Timer_wheel.capacity w <= 16);
        (* Still fully usable after shrinking. *)
        Sim.Timer_wheel.add w ~cell:2 ~deadline:5 ~seq:1;
        Alcotest.(check int) "pops" 2 (Sim.Timer_wheel.pop w));
  ]

(* ------------------------------------------------------------------ *)
(* Link                                                               *)
(* ------------------------------------------------------------------ *)

let deliver_time link ~now =
  let rng = Sim.Rng.create ~seed:11 in
  match link.Sim.Link.fate ~rng ~now ~src:0 ~dst:1 with
  | Sim.Link.Drop -> None
  | Sim.Link.Deliver_at t -> Some t

let link_tests =
  [
    tc "synchronous has a fixed delay" (fun () ->
        let l = Sim.Link.synchronous ~delay:4 in
        Alcotest.(check (option int)) "now+4" (Some 14) (deliver_time l ~now:10));
    Test_util.qcheck ~count:300 ~name:"reliable delay within bounds"
      QCheck2.Gen.(tup2 (int_range 0 1000) (int_range 0 100))
      (fun (now, s) ->
        let l = Sim.Link.reliable ~min_delay:2 ~max_delay:9 () in
        let rng = Sim.Rng.create ~seed:s in
        match l.Sim.Link.fate ~rng ~now ~src:0 ~dst:1 with
        | Sim.Link.Drop -> false
        | Sim.Link.Deliver_at t -> t >= now + 2 && t <= now + 9);
    Test_util.qcheck ~count:500 ~name:"partial synchrony: DLS bound max(send,gst)+delta"
      QCheck2.Gen.(tup3 (int_range 0 2000) (int_range 0 1000) (int_range 0 1000))
      (fun (now, gst, s) ->
        let delta = 10 in
        let l = Sim.Link.partially_synchronous ~gst ~delta () in
        let rng = Sim.Rng.create ~seed:s in
        match l.Sim.Link.fate ~rng ~now ~src:0 ~dst:1 with
        | Sim.Link.Drop -> false
        | Sim.Link.Deliver_at t -> t > now && t <= max now gst + delta);
    tc "fair-lossy with p=0 never drops" (fun () ->
        let l =
          Sim.Link.fair_lossy ~drop_probability:0.0 ~underlying:(Sim.Link.synchronous ~delay:1)
        in
        for now = 0 to 200 do
          if deliver_time l ~now = None then Alcotest.fail "dropped"
        done);
    tc "fair-lossy drops roughly p" (fun () ->
        let l =
          Sim.Link.fair_lossy ~drop_probability:0.5 ~underlying:(Sim.Link.synchronous ~delay:1)
        in
        let rng = Sim.Rng.create ~seed:21 in
        let drops = ref 0 in
        for _ = 1 to 2000 do
          match l.Sim.Link.fate ~rng ~now:0 ~src:0 ~dst:1 with
          | Sim.Link.Drop -> incr drops
          | Sim.Link.Deliver_at _ -> ()
        done;
        Alcotest.(check bool) "between 40% and 60%" true (!drops > 800 && !drops < 1200));
    tc "never drops everything" (fun () ->
        Alcotest.(check (option int)) "drop" None (deliver_time Sim.Link.never ~now:0));
    tc "ever_slower: latency grows with the clock, but every message arrives" (fun () ->
        let l = Sim.Link.ever_slower ~slowdown_divisor:4 () in
        let d t = Option.get (deliver_time l ~now:t) - t in
        Alcotest.(check bool) "early cheap" true (d 0 < 10);
        Alcotest.(check bool) "late expensive" true (d 10_000 >= 2500);
        Alcotest.(check bool) "ever later" true (d 100_000 > d 10_000));
    tc "growing_blackouts: open windows deliver fast, blackouts drop" (fun () ->
        let l =
          Sim.Link.growing_blackouts ~min_delay:1 ~max_delay:4 ~open_window:50
            ~initial_blackout:50 ~blackout_growth:50 ()
        in
        (* cycle 0: open [0,50), blackout [50,100); cycle 1: open [100,150),
           blackout [150,250) ... *)
        Alcotest.(check bool) "open at 10" true (deliver_time l ~now:10 <> None);
        Alcotest.(check (option int)) "blackout at 60" None (deliver_time l ~now:60);
        Alcotest.(check bool) "open again at 110" true (deliver_time l ~now:110 <> None);
        Alcotest.(check (option int)) "longer blackout at 200" None (deliver_time l ~now:200));
    tc "growing_blackouts: fairness — open windows recur forever" (fun () ->
        let l = Sim.Link.growing_blackouts () in
        (* Scan far ahead: there must still be delivery instants. *)
        let found = ref false in
        let t = ref 100_000 in
        while (not !found) && !t < 200_000 do
          if deliver_time l ~now:!t <> None then found := true;
          t := !t + 13
        done;
        Alcotest.(check bool) "delivery possible late in the run" true !found);
    tc "route dispatches per pair" (fun () ->
        let l =
          Sim.Link.route ~describe:"test" (fun ~src ~dst:_ ->
              if src = 0 then Sim.Link.synchronous ~delay:1 else Sim.Link.synchronous ~delay:5)
        in
        let rng = Sim.Rng.create ~seed:1 in
        let t01 =
          match l.Sim.Link.fate ~rng ~now:0 ~src:0 ~dst:1 with
          | Sim.Link.Deliver_at t -> t
          | Sim.Link.Drop -> -1
        in
        let t10 =
          match l.Sim.Link.fate ~rng ~now:0 ~src:1 ~dst:0 with
          | Sim.Link.Deliver_at t -> t
          | Sim.Link.Drop -> -1
        in
        Alcotest.(check int) "fast" 1 t01;
        Alcotest.(check int) "slow" 5 t10);
  ]

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

type Sim.Payload.t += Ping of int

let mk_engine ?(seed = 0) ?(n = 3) ?(delay = 2) () =
  Sim.Engine.create ~seed ~n ~link:(Sim.Link.synchronous ~delay) ()

let engine_tests =
  [
    tc "message delivery calls the handler with src and payload" (fun () ->
        let e = mk_engine () in
        let got = ref [] in
        Sim.Engine.register e ~component:"t" 1 (fun ~src payload ->
            match payload with Ping k -> got := (src, k) :: !got | _ -> ());
        Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:0 ~dst:1 (Ping 7);
        Sim.Engine.run_until e 10;
        Alcotest.(check (list (pair int int))) "one delivery" [ (0, 7) ] !got);
    tc "self-send is local, instant and uncounted" (fun () ->
        let e = mk_engine () in
        let got = ref 0 in
        Sim.Engine.register e ~component:"t" 0 (fun ~src:_ _ -> incr got);
        Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:0 ~dst:0 (Ping 1);
        Sim.Engine.run_until e 0;
        Alcotest.(check int) "delivered at t=0" 1 !got;
        Alcotest.(check int) "not counted" 0
          (Sim.Stats.component_counts (Sim.Engine.stats e) ~component:"t").Sim.Stats.sent);
    tc "timers fire at the right instant" (fun () ->
        let e = mk_engine () in
        let fired = ref (-1) in
        ignore (Sim.Engine.set_timer e 0 ~delay:5 (fun () -> fired := Sim.Engine.now e));
        Sim.Engine.run_until e 4;
        Alcotest.(check int) "not yet" (-1) !fired;
        Sim.Engine.run_until e 5;
        Alcotest.(check int) "at 5" 5 !fired);
    tc "cancelled timers do not fire" (fun () ->
        let e = mk_engine () in
        let fired = ref false in
        let t = Sim.Engine.set_timer e 0 ~delay:5 (fun () -> fired := true) in
        Sim.Engine.cancel_timer e t;
        Sim.Engine.run_until e 10;
        Alcotest.(check bool) "silent" false !fired);
    tc "every: periodic until stopped" (fun () ->
        let e = mk_engine () in
        let count = ref 0 in
        let stop = Sim.Engine.every e 0 ~phase:0 ~period:10 (fun () -> incr count) in
        Sim.Engine.run_until e 35;
        Alcotest.(check int) "4 firings (0,10,20,30)" 4 !count;
        stop ();
        Sim.Engine.run_until e 100;
        Alcotest.(check int) "no more" 4 !count);
    tc "crash stops timers, handlers and sends" (fun () ->
        let e = mk_engine () in
        let count = ref 0 in
        ignore (Sim.Engine.every e 0 ~phase:0 ~period:10 (fun () -> incr count) : unit -> unit);
        Sim.Engine.register e ~component:"t" 0 (fun ~src:_ _ -> incr count);
        Sim.Engine.schedule_crash e 0 ~at:13;
        Sim.Engine.run_until e 12;
        (* Arrives at 14, after the crash: must be dropped. *)
        Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:1 ~dst:0 (Ping 0);
        Sim.Engine.run_until e 100;
        Alcotest.(check int) "only t=0 and t=10 firings" 2 !count;
        Alcotest.(check bool) "dead" false (Sim.Engine.is_alive e 0);
        (* Sends from the dead process are swallowed (only p2's earlier send
           was ever counted). *)
        Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:0 ~dst:1 (Ping 0);
        Sim.Engine.run_until e 110;
        Alcotest.(check int) "src dead: nothing new sent" 1
          (Sim.Stats.component_counts (Sim.Engine.stats e) ~component:"t").Sim.Stats.sent);
    tc "message to a crashed process is dropped and traced" (fun () ->
        let e = mk_engine () in
        Sim.Engine.register e ~component:"t" 1 (fun ~src:_ _ -> Alcotest.fail "delivered");
        Sim.Engine.schedule_crash e 1 ~at:1;
        Sim.Engine.run_until e 1;
        Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:0 ~dst:1 (Ping 0);
        Sim.Engine.run_until e 20;
        let drops =
          List.filter
            (fun (ev : Sim.Trace.event) ->
              match ev.body with Sim.Trace.Drop _ -> true | _ -> false)
            (Sim.Trace.events (Sim.Engine.trace e))
        in
        Alcotest.(check int) "one drop" 1 (List.length drops));
    tc "in-flight messages from a crashed process still arrive" (fun () ->
        let e = mk_engine ~delay:5 () in
        let got = ref 0 in
        Sim.Engine.register e ~component:"t" 1 (fun ~src:_ _ -> incr got);
        Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:0 ~dst:1 (Ping 0);
        Sim.Engine.schedule_crash e 0 ~at:1;
        Sim.Engine.run_until e 20;
        Alcotest.(check int) "delivered" 1 !got);
    tc "duplicate registration raises" (fun () ->
        let e = mk_engine () in
        Sim.Engine.register e ~component:"t" 0 (fun ~src:_ _ -> ());
        Alcotest.(check bool) "raises" true
          (try
             Sim.Engine.register e ~component:"t" 0 (fun ~src:_ _ -> ());
             false
           with Invalid_argument _ -> true));
    tc "run_until refuses to go backwards" (fun () ->
        let e = mk_engine () in
        Sim.Engine.run_until e 10;
        Alcotest.(check bool) "raises" true
          (try
             Sim.Engine.run_until e 5;
             false
           with Invalid_argument _ -> true));
    tc "deterministic replay: identical traces for identical seeds" (fun () ->
        let run seed =
          let e = Sim.Engine.create ~seed ~n:4 ~link:(Sim.Link.reliable ()) () in
          Sim.Engine.register e ~component:"t" 1 (fun ~src:_ _ -> ());
          List.iter
            (fun p ->
              ignore
                (Sim.Engine.every e p ~phase:0 ~period:7 (fun () ->
                     Sim.Engine.send e ~component:"t" ~tag:"ping" ~src:p ~dst:1 (Ping p))
                  : unit -> unit))
            [ 0; 2; 3 ];
          Sim.Engine.run_until e 500;
          List.map
            (Format.asprintf "%a" Sim.Trace.pp_event)
            (Sim.Trace.events (Sim.Engine.trace e))
        in
        Alcotest.(check (list string)) "same" (run 33) (run 33);
        Alcotest.(check bool) "different seed differs" true (run 33 <> run 34));
    tc "harness 'at' runs even with everyone crashed" (fun () ->
        let e = mk_engine ~n:1 () in
        Sim.Engine.schedule_crash e 0 ~at:1;
        let ran = ref false in
        Sim.Engine.at e 5 (fun () -> ran := true);
        Sim.Engine.run_until e 10;
        Alcotest.(check bool) "ran" true !ran);
    tc "cancelled timer's registry slot is reclaimed when the deadline passes" (fun () ->
        let e = mk_engine () in
        let t = Sim.Engine.set_timer e 0 ~delay:5 (fun () -> Alcotest.fail "fired") in
        Sim.Engine.cancel_timer e t;
        Alcotest.(check int) "resident while pending" 1 (Sim.Engine.timer_residency e);
        Sim.Engine.run_until e 4;
        Alcotest.(check int) "still resident before deadline" 1 (Sim.Engine.timer_residency e);
        Sim.Engine.run_until e 5;
        Alcotest.(check int) "reclaimed at deadline" 0 (Sim.Engine.timer_residency e);
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
        Alcotest.(check int) "set" 1 lc.Sim.Stats.timers_set;
        Alcotest.(check int) "cancelled" 1 lc.Sim.Stats.timers_cancelled;
        Alcotest.(check int) "reclaimed" 1 lc.Sim.Stats.timers_reclaimed;
        Alcotest.(check int) "never fired" 0 lc.Sim.Stats.timers_fired);
    tc "cancel is idempotent and stale handles are no-ops" (fun () ->
        let e = mk_engine () in
        let t = Sim.Engine.set_timer e 0 ~delay:2 (fun () -> ()) in
        Sim.Engine.cancel_timer e t;
        Sim.Engine.cancel_timer e t;
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
        Alcotest.(check int) "counted once" 1 lc.Sim.Stats.timers_cancelled;
        Sim.Engine.run_until e 2;
        (* The slot is reclaimed and may be reused; the stale handle must
           not be able to kill the new occupant. *)
        let fired = ref false in
        ignore (Sim.Engine.set_timer e 0 ~delay:3 (fun () -> fired := true) : Sim.Engine.timer);
        Sim.Engine.cancel_timer e t;
        Sim.Engine.run_until e 10;
        Alcotest.(check bool) "new timer in reused slot fired" true !fired);
    tc "timer lifecycle counters balance: set = fired + cancelled + crash-orphaned" (fun () ->
        let e = mk_engine () in
        let t1 = Sim.Engine.set_timer e 0 ~delay:3 (fun () -> ()) in
        ignore (Sim.Engine.set_timer e 1 ~delay:4 (fun () -> ()) : Sim.Engine.timer);
        ignore (Sim.Engine.set_timer e 2 ~delay:5 (fun () -> ()) : Sim.Engine.timer);
        Sim.Engine.cancel_timer e t1;
        Sim.Engine.schedule_crash e 2 ~at:1;
        Sim.Engine.run_until e 10;
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
        Alcotest.(check int) "set" 3 lc.Sim.Stats.timers_set;
        Alcotest.(check int) "fired" 1 lc.Sim.Stats.timers_fired;
        Alcotest.(check int) "cancelled" 1 lc.Sim.Stats.timers_cancelled;
        Alcotest.(check int) "crash-orphaned" 1 lc.Sim.Stats.timers_orphaned;
        Alcotest.(check int) "nothing armed" 0 (Sim.Engine.timer_armed e);
        Alcotest.(check int) "conservation" lc.Sim.Stats.timers_set
          (lc.Sim.Stats.timers_fired + lc.Sim.Stats.timers_cancelled
          + lc.Sim.Stats.timers_orphaned + Sim.Engine.timer_armed e);
        Alcotest.(check int) "all reclaimed" 3 lc.Sim.Stats.timers_reclaimed;
        Alcotest.(check int) "no residual slots" 0 (Sim.Engine.timer_residency e));
    tc "every ~phase:0 fires at the current instant, then exactly once per period" (fun () ->
        let e = mk_engine () in
        let fired = ref [] in
        ignore
          (Sim.Engine.every e 0 ~phase:0 ~period:10 (fun () ->
               fired := Sim.Engine.now e :: !fired)
            : unit -> unit);
        Sim.Engine.run_until e 30;
        Alcotest.(check (list int)) "instants" [ 0; 10; 20; 30 ] (List.rev !fired));
    tc "stopping 'every' cancels the armed occurrence" (fun () ->
        let e = mk_engine () in
        let stop = Sim.Engine.every e 0 ~phase:0 ~period:10 (fun () -> ()) in
        Sim.Engine.run_until e 15;
        stop ();
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
        Alcotest.(check int) "armed occurrence cancelled" 1 lc.Sim.Stats.timers_cancelled;
        Sim.Engine.run_until e 20;
        Alcotest.(check int) "and reclaimed at its deadline" 0 (Sim.Engine.timer_residency e));
    tc "timer table capacity is bounded by peak in-flight timers" (fun () ->
        let e = mk_engine () in
        (* 1000 sequential set/fire rounds never hold more than one timer at
           a time, so the registry must not grow past its first block. *)
        let rec chain k =
          if k > 0 then
            ignore (Sim.Engine.set_timer e 0 ~delay:1 (fun () -> chain (k - 1)) : Sim.Engine.timer)
        in
        chain 1000;
        Sim.Engine.run_until e 1001;
        let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
        Alcotest.(check int) "all 1000 set" 1000 lc.Sim.Stats.timers_set;
        Alcotest.(check bool) "capacity stays tiny" true (Sim.Engine.timer_table_capacity e <= 16));
    tc "same-instant timers and harness events interleave in scheduling order" (fun () ->
        (* Timers live in the wheel and harness actions in the event heap;
           the merge must reproduce global scheduling order, never give one
           source blanket priority. *)
        let e = mk_engine () in
        let log = ref [] in
        let push tag () = log := tag :: !log in
        Sim.Engine.at e 5 (push "heap-1");
        ignore (Sim.Engine.set_timer e 0 ~delay:5 (push "wheel-1") : Sim.Engine.timer);
        Sim.Engine.at e 5 (push "heap-2");
        ignore (Sim.Engine.set_timer e 0 ~delay:5 (push "wheel-2") : Sim.Engine.timer);
        Sim.Engine.run_until e 5;
        Alcotest.(check (list string)) "scheduling order"
          [ "heap-1"; "wheel-1"; "heap-2"; "wheel-2" ]
          (List.rev !log));
    tc "compact shrinks the timer table to live residency" (fun () ->
        let e = mk_engine () in
        (* The straggler is armed first, so it holds slot 0 — the table's
           live high-water after the burst drains. *)
        let fired = ref false in
        ignore (Sim.Engine.set_timer e 0 ~delay:200 (fun () -> fired := true) : Sim.Engine.timer);
        (* A burst of concurrent timers grows the table, then drains. *)
        for i = 0 to 999 do
          ignore (Sim.Engine.set_timer e 0 ~delay:(1 + (i mod 50)) (fun () -> ()) : Sim.Engine.timer)
        done;
        Sim.Engine.run_until e 60;
        Alcotest.(check bool) "burst grew the table" true
          (Sim.Engine.timer_table_capacity e >= 1000);
        Sim.Engine.compact e;
        Alcotest.(check bool) "shrunk to live residency" true
          (Sim.Engine.timer_table_capacity e <= 16);
        Sim.Engine.run_until e 250;
        Alcotest.(check bool) "straggler survived compaction" true !fired);
    tc "handles from before compact stay stale after the table regrows" (fun () ->
        let e = mk_engine () in
        let doomed = ref [] in
        for _ = 0 to 99 do
          doomed := Sim.Engine.set_timer e 0 ~delay:1 (fun () -> ()) :: !doomed
        done;
        Sim.Engine.run_until e 2;
        Sim.Engine.compact e;
        Alcotest.(check int) "table emptied" 0 (Sim.Engine.timer_table_capacity e);
        (* Regrow the dropped region with fresh timers; the pre-compact
           handles must not be able to cancel any of them. *)
        let fired = ref 0 in
        for _ = 0 to 99 do
          ignore (Sim.Engine.set_timer e 0 ~delay:3 (fun () -> incr fired) : Sim.Engine.timer)
        done;
        List.iter (Sim.Engine.cancel_timer e) !doomed;
        Sim.Engine.run_until e 10;
        Alcotest.(check int) "stale cancels were no-ops" 100 !fired);
    Test_util.qcheck ~count:80 ~name:"random timer workloads conserve the lifecycle ledger"
      QCheck2.Gen.(tup2 (int_range 0 10_000) (int_range 1 6))
      (fun (seed, n) ->
        (* A random mix of one-shots, periodics, cancellations and one
           crash; the conservation law must hold mid-run and at the end:
           set = fired + cancelled + orphaned + armed, and every set timer
           is reclaimed or still resident. *)
        let e = Sim.Engine.create ~seed ~n ~link:(Sim.Link.synchronous ~delay:1) () in
        let rng = Sim.Rng.create ~seed:(seed + 1) in
        let cancels = ref [] in
        for _ = 1 to 40 do
          let p = Sim.Rng.int rng ~bound:n in
          match Sim.Rng.int rng ~bound:3 with
          | 0 ->
            let delay = Sim.Rng.int rng ~bound:64 in
            let t = Sim.Engine.set_timer e p ~delay (fun () -> ()) in
            if Sim.Rng.int rng ~bound:2 = 0 then cancels := t :: !cancels
          | 1 ->
            let period = 1 + Sim.Rng.int rng ~bound:7 in
            ignore (Sim.Engine.every e p ~period (fun () -> ()) : unit -> unit)
          | _ -> List.iter (Sim.Engine.cancel_timer e) !cancels
        done;
        Sim.Engine.schedule_crash e (Sim.Rng.int rng ~bound:n) ~at:(1 + Sim.Rng.int rng ~bound:30);
        let holds () =
          let lc = Sim.Stats.lifecycle (Sim.Engine.stats e) in
          lc.Sim.Stats.timers_set
          = lc.Sim.Stats.timers_fired + lc.Sim.Stats.timers_cancelled
            + lc.Sim.Stats.timers_orphaned + Sim.Engine.timer_armed e
          && lc.Sim.Stats.timers_set
             = lc.Sim.Stats.timers_reclaimed + Sim.Engine.timer_residency e
        in
        let mid = ref true in
        for h = 1 to 10 do
          Sim.Engine.run_until e (h * 8);
          mid := !mid && holds ()
        done;
        !mid && holds ());
  ]

(* ------------------------------------------------------------------ *)
(* Stats, Fault, Trace, Signal                                        *)
(* ------------------------------------------------------------------ *)

let stats_tests =
  [
    tc "per-component and per-tag counts" (fun () ->
        let s = Sim.Stats.create () in
        Sim.Stats.on_send s ~component:"a" ~tag:"x";
        Sim.Stats.on_send s ~component:"a" ~tag:"y";
        Sim.Stats.on_deliver s ~component:"a" ~tag:"x";
        Sim.Stats.on_send s ~component:"b" ~tag:"x";
        Alcotest.(check int) "a sent" 2 (Sim.Stats.component_counts s ~component:"a").Sim.Stats.sent;
        Alcotest.(check int) "a/x delivered" 1
          (Sim.Stats.tag_counts s ~component:"a" ~tag:"x").Sim.Stats.delivered;
        Alcotest.(check int) "total sent" 3 (Sim.Stats.total s).Sim.Stats.sent;
        Alcotest.(check (list string)) "components" [ "a"; "b" ] (Sim.Stats.components s));
    tc "snapshots measure windows" (fun () ->
        let s = Sim.Stats.create () in
        Sim.Stats.on_send s ~component:"a" ~tag:"x";
        let snap = Sim.Stats.snapshot s in
        Sim.Stats.on_send s ~component:"a" ~tag:"x";
        Sim.Stats.on_send s ~component:"a" ~tag:"z";
        Alcotest.(check int) "window" 2 (Sim.Stats.sent_since s snap ~component:"a");
        Alcotest.(check int) "total window" 2 (Sim.Stats.total_sent_since s snap));
  ]

let fault_tests =
  [
    tc "faulty and correct partition the processes" (fun () ->
        let sched = Sim.Fault.crashes [ (1, 10); (3, 20) ] in
        Alcotest.(check (list int)) "faulty" [ 1; 3 ] (Sim.Pid.Set.elements (Sim.Fault.faulty sched));
        Alcotest.(check (list int)) "correct" [ 0; 2; 4 ]
          (Sim.Pid.Set.elements (Sim.Fault.correct ~n:5 sched)));
    tc "duplicate victims rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sim.Fault.crashes [ (1, 10); (1, 20) ]);
             false
           with Invalid_argument _ -> true));
    tc "last_crash_time" (fun () ->
        Alcotest.(check int) "none" 0 (Sim.Fault.last_crash_time Sim.Fault.none);
        Alcotest.(check int) "max" 20 (Sim.Fault.last_crash_time [ (1, 10); (3, 20) ]));
    Test_util.qcheck ~count:200 ~name:"random_minority keeps a majority correct"
      QCheck2.Gen.(tup2 (int_range 1 12) (int_range 0 100_000))
      (fun (n, seed) ->
        let rng = Sim.Rng.create ~seed in
        let sched = Sim.Fault.random_minority rng ~n ~latest:100 in
        2 * Sim.Pid.Set.cardinal (Sim.Fault.faulty sched) < n);
  ]

let signal_tests =
  [
    tc "subscribers are called in order" (fun () ->
        let s = Sim.Signal.create () in
        let log = ref [] in
        Sim.Signal.subscribe s (fun x -> log := ("a", x) :: !log);
        Sim.Signal.subscribe s (fun x -> log := ("b", x) :: !log);
        Sim.Signal.emit s 1;
        Alcotest.(check (list (pair string int))) "order" [ ("b", 1); ("a", 1) ] !log;
        Alcotest.(check int) "count" 2 (Sim.Signal.subscriber_count s));
  ]

let trace_tests =
  [
    tc "dump writes one pretty-printed event per line" (fun () ->
        let t = Sim.Trace.create () in
        Sim.Trace.record t (Sim.Trace.Crash { at = 3; pid = 1 });
        Sim.Trace.record t (Sim.Trace.Propose { at = 5; pid = 0; value = 7 });
        let file = Filename.temp_file "ecfd" ".trace" in
        let oc = open_out file in
        Sim.Trace.dump t oc;
        close_out oc;
        let ic = open_in file in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        Sys.remove file;
        Alcotest.(check int) "two lines" 2 (List.length !lines);
        Alcotest.(check bool) "crash line carries seq/lc stamp" true
          (List.exists (fun l -> l = "#0 @1 [t=3] crash p2") !lines));
    tc "accessors filter and order events" (fun () ->
        let t = Sim.Trace.create () in
        Sim.Trace.record t (Sim.Trace.Propose { at = 0; pid = 0; value = 7 });
        Sim.Trace.record t (Sim.Trace.Crash { at = 3; pid = 1 });
        Sim.Trace.record t (Sim.Trace.Decide { at = 9; pid = 0; value = 7; round = 2 });
        Sim.Trace.record t
          (Sim.Trace.Fd_view
             { at = 5; pid = 0; component = "x"; suspected = Sim.Pid.Set.empty; trusted = Some 1 });
        Alcotest.(check int) "length" 4 (Sim.Trace.length t);
        Alcotest.(check (list (pair int int))) "crashes" [ (1, 3) ] (Sim.Trace.crashes t);
        Alcotest.(check (list (pair int int))) "proposals" [ (0, 7) ] (Sim.Trace.proposals t);
        Alcotest.(check int) "decisions" 1 (List.length (Sim.Trace.decisions t));
        Alcotest.(check int) "fd views" 1 (List.length (Sim.Trace.fd_views ~component:"x" t));
        Alcotest.(check int) "fd views other comp" 0
          (List.length (Sim.Trace.fd_views ~component:"y" t)));
  ]

let suites =
  [
    ("sim.pid", pid_tests);
    ("sim.rng", rng_tests);
    ("sim.heap", heap_tests);
    ("sim.event_queue", event_queue_tests);
    ("sim.timer_wheel", timer_wheel_tests);
    ("sim.link", link_tests);
    ("sim.engine", engine_tests);
    ("sim.stats", stats_tests);
    ("sim.fault", fault_tests);
    ("sim.signal", signal_tests);
    ("sim.trace", trace_tests);
  ]
