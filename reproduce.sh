#!/bin/sh
# Regenerate everything: build, full test suite, all experiments.
# Outputs land in test_output.txt and bench_output.txt.
set -e
dune build @all
dune build @lint
dune build @analyze
dune build @alloccheck
dune build @racecheck
dune runtest --force --no-buffer 2>&1 | tee test_output.txt
dune exec bench/main.exe 2>&1 | tee bench_output.txt
