(* The benchmark harness: regenerates every quantitative claim of the
   paper's evaluation (experiments E1-E10, DESIGN.md §3) and times the
   substrate itself (B1-B4).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e4 e5   # selected experiments
     dune exec bench/main.exe -- micro   # only the Bechamel group
     dune exec bench/main.exe -- sim_core   # engine hot path -> BENCH_sim_core.json
                                            # (SIM_CORE_EVENTS=2000 for a smoke run) *)

let experiments =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("e15", Experiments.e15);
    ("e16", Experiments.e16);
    ("e17", Experiments.e17);
    ("e18", Experiments.e18);
    ("e19", Experiments.e19);
    ("micro", Micro.run);
    ("sim_core", Micro.sim_core);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ :: [] | [] -> List.map fst experiments
  in
  Format.printf
    "Reproduction harness for \"Eventually consistent failure detectors\" (JPDC 65, 2005)@.";
  Format.printf "Experiments: %s@." (String.concat " " requested);
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Format.printf "unknown experiment %S (available: %s)@." name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  Format.printf "@.Done.@."
