(* The benchmark harness: regenerates every quantitative claim of the
   paper's evaluation (experiments E1-E10, DESIGN.md §3) and times the
   substrate itself (B1-B4).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e4 e5   # selected experiments
     dune exec bench/main.exe -- micro   # only the Bechamel group
     dune exec bench/main.exe -- sim_core   # engine hot path -> BENCH_sim_core.json
                                            # (SIM_CORE_EVENTS=2000 for a smoke run)
     dune exec bench/main.exe -- e20        # heartbeat-saturated scaling + allocs/event
                                            # (ECFD_E20_NS / ECFD_E20_EVENTS trim it;
                                            #  ECFD_ALLOC_GATE=1 enables the CI budget gate)

   Experiments fan their (subject, seed, n) grids over a Domain job pool;
   --domains N (or ECFD_DOMAINS=N) picks the parallelism, default
   Domain.recommended_domain_count capped at 8, and 1 is fully
   sequential.  Tables are rendered from order-restored results, so
   stdout is byte-identical at every domain count — only the wall-clock
   (recorded in BENCH_experiments.json, reported on stderr) changes. *)

let experiments =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e11", Experiments.e11);
    ("e12", Experiments.e12);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("e15", Experiments.e15);
    ("e16", Experiments.e16);
    ("e17", Experiments.e17);
    ("e18", Experiments.e18);
    ("e19", Experiments.e19);
    ("e20", Micro.e20);
    ("e21", Micro.e21);
    ("e22", Qos_bench.e22);
    ("micro", Micro.run);
    ("sim_core", Micro.sim_core);
  ]

let json_file = "BENCH_experiments.json"

let wall () =
  (Unix.gettimeofday
   [@lint.allow ambient "harness timing is a wall-clock fact about the host, not simulated state"])
    ()

let usage () =
  Printf.eprintf "usage: main.exe [--domains N] [--shards K] [experiment ...]\navailable: %s\n"
    (String.concat " " (List.map fst experiments));
  exit 2

(* [--domains N] / [--domains=N] and [--shards K] / [--shards=K] anywhere
   in argv; the rest are experiment names. *)
let parse_args args =
  let rec go domains shards names = function
    | [] -> (domains, shards, List.rev names)
    | "--domains" :: v :: rest -> (
      match int_of_string_opt v with
      | Some d when d >= 1 -> go (Some d) shards names rest
      | Some _ | None -> usage ())
    | [ "--domains" ] -> usage ()
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--domains=" -> (
      match int_of_string_opt (String.sub arg 10 (String.length arg - 10)) with
      | Some d when d >= 1 -> go (Some d) shards names rest
      | Some _ | None -> usage ())
    | "--shards" :: v :: rest -> (
      match int_of_string_opt v with
      | Some k when k >= 1 -> go domains (Some k) names rest
      | Some _ | None -> usage ())
    | [ "--shards" ] -> usage ()
    | arg :: rest when String.length arg > 9 && String.sub arg 0 9 = "--shards=" -> (
      match int_of_string_opt (String.sub arg 9 (String.length arg - 9)) with
      | Some k when k >= 1 -> go domains (Some k) names rest
      | Some _ | None -> usage ())
    | arg :: rest -> go domains shards (arg :: names) rest
  in
  go None None [] args

(* Per-experiment timing plus the pool's own busy/wall split:
   [busy_s /. pool_wall_s] is the achieved speedup of the pooled sections
   without running anything twice (busy_s is what the same jobs would cost
   sequentially). *)
type timing = {
  name : string;
  wall_s : float;
  pool : Exec.Pool.metrics;
}

let speedup (t : timing) =
  if t.pool.Exec.Pool.wall_s > 0.0 then t.pool.Exec.Pool.busy_s /. t.pool.Exec.Pool.wall_s
  else 1.0

let emit_json ~domains ~total_s timings =
  let oc = open_out json_file in
  Printf.fprintf oc "{\n  \"bench\": \"experiments\",\n  \"schema_version\": 1,\n";
  Printf.fprintf oc "  \"domains\": %d,\n  \"experiments\": [" domains;
  List.iteri
    (fun i t ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"wall_s\": %.6f, \"pool_runs\": %d, \"jobs\": %d, \"busy_s\": %.6f, \"pool_wall_s\": %.6f, \"speedup\": %.3f }"
        (if i = 0 then "" else ",")
        t.name t.wall_s t.pool.Exec.Pool.runs t.pool.Exec.Pool.jobs t.pool.Exec.Pool.busy_s
        t.pool.Exec.Pool.wall_s (speedup t))
    timings;
  Printf.fprintf oc "\n  ],\n  \"total_wall_s\": %.6f\n}\n" total_s;
  close_out oc

let () =
  let domains_arg, shards_arg, requested = parse_args (List.tl (Array.to_list Sys.argv)) in
  Option.iter Exec.Pool.set_default_domains domains_arg;
  (* [--shards K] (or ECFD_SHARDS, read by Shard.default_shards) selects
     the engine back-end every experiment builds on; stdout is
     byte-identical at every K, so only stderr mentions the choice. *)
  Option.iter Sim.Shard.set_default_shards shards_arg;
  let domains = Exec.Pool.default_domains () in
  let requested = match requested with [] -> List.map fst experiments | _ -> requested in
  List.iter
    (fun name ->
      if not (List.mem_assoc name experiments) then begin
        Printf.eprintf "unknown experiment %S\n" name;
        usage ()
      end)
    requested;
  (* The domain count goes to stderr only: stdout must stay byte-identical
     across --domains values. *)
  Printf.eprintf "ecfd-bench: %d domain(s), %d shard(s)\n%!" domains
    (Sim.Shard.default_shards ());
  Format.printf
    "Reproduction harness for \"Eventually consistent failure detectors\" (JPDC 65, 2005)@.";
  Format.printf "Experiments: %s@." (String.concat " " requested);
  let t_total = wall () in
  let timings =
    List.map
      (fun name ->
        let f = List.assoc name experiments in
        Exec.Pool.reset_metrics ();
        let t0 = wall () in
        f ();
        { name; wall_s = wall () -. t0; pool = Exec.Pool.metrics () })
      requested
  in
  let total_s = wall () -. t_total in
  Format.printf "@.Done.@.";
  emit_json ~domains ~total_s timings;
  List.iter
    (fun t ->
      Printf.eprintf "ecfd-bench: %-8s %7.2fs wall, %d pool job(s), %.2fs busy, speedup %.2fx\n"
        t.name t.wall_s t.pool.Exec.Pool.jobs t.pool.Exec.Pool.busy_s (speedup t))
    timings;
  Printf.eprintf "ecfd-bench: wrote %s (total %.2fs at %d domain(s))\n%!" json_file total_s
    domains
