(* Bechamel micro-benchmarks of the substrate (B1-B4 in DESIGN.md):
   wall-clock cost of the simulator and of complete protocol runs.  These
   are about the reproduction artefact itself, not the paper's claims —
   they answer "how expensive is one experiment?". *)

open Bechamel
open Toolkit

(* B1: raw engine throughput — events through the queue. *)
let bench_engine_events =
  Test.make ~name:"b1: engine, heartbeat <>P n=8, 500 ticks"
    (Staged.stage (fun () ->
         let engine =
           Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
         in
         let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
         Sim.Engine.run_until engine 500))

(* B2: the ring detector, whose epoch-vector piggybacking is the heaviest
   per-message work in the FD layer. *)
let bench_ring =
  Test.make ~name:"b2: ring <>S n=16, 500 ticks, one crash"
    (Staged.stage (fun () ->
         let engine =
           Sim.Engine.create ~seed:2 ~n:16 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
         in
         Sim.Fault.apply engine (Sim.Fault.crash 5 ~at:100);
         let _ = Fd.Ring_s.install engine Fd.Ring_s.default_params in
         Sim.Engine.run_until engine 500))

(* B3: one complete <>C consensus instance over the full stack. *)
let bench_consensus =
  Test.make ~name:"b3: <>C consensus n=5, full stack, to decision"
    (Staged.stage (fun () ->
         let r =
           Scenario.run_consensus ~net:{ Scenario.default_net with seed = 3 } ~horizon:500 ~n:5
             ~detector:Scenario.Ec_from_leader
             ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
         in
         assert (Spec.Consensus_props.decision_round r.Scenario.trace <> None)))

(* B4: trace checking — the Spec layer over a finished run. *)
let bench_spec =
  let r =
    Scenario.run_consensus ~net:{ Scenario.default_net with seed = 4 } ~horizon:3000 ~n:6
      ~crashes:(Sim.Fault.crash 1 ~at:50) ~detector:Scenario.Ec_from_leader
      ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
  in
  let run =
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component r.Scenario.fd) ~n:6 r.Scenario.trace
  in
  Test.make ~name:"b4: property checking of a finished trace"
    (Staged.stage (fun () ->
         ignore (Spec.Fd_props.satisfies_class Fd.Classes.Ec run);
         ignore (Spec.Consensus_props.check_all r.Scenario.trace ~n:6)))

(* ------------------------------------------------------------------ *)
(* Sim-core lifecycle bench: events/sec through the engine hot path   *)
(* and resource-accounting counters, emitted as BENCH_sim_core.json   *)
(* so successive PRs can track the engine's perf trajectory.          *)
(* ------------------------------------------------------------------ *)

let sim_core_default_events = 1_000_000

let sim_core_target () =
  (* SIM_CORE_EVENTS=2000 gives CI a smoke run that still exercises the
     whole measurement + JSON path. *)
  match Sys.getenv_opt "SIM_CORE_EVENTS" with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> sim_core_default_events)
  | None -> sim_core_default_events

let sim_core_json_file = "BENCH_sim_core.json"

(* Results of the two sim-core sections (timer-churn and the e20 heartbeat
   scaling sweep), kept module-level so one process running both — the
   default bench run, or `main.exe -- sim_core e20` — emits a single
   BENCH_sim_core.json with both sections populated.  A process running
   only one section emits [null] for the other. *)

type churn_result = {
  ch_n : int;
  ch_target : int;
  ch_events : int;
  ch_elapsed : float;
  ch_eps : float;
  ch_queue_hw : int;
  ch_set : int;
  ch_fired : int;
  ch_cancelled : int;
  ch_orphaned : int;
  ch_reclaimed : int;
  ch_capacity : int;
  ch_max_residency : int;
  ch_residency_end : int;
  ch_heap_pop_words : float;
  ch_obs_json : string;
}

type e20_row = {
  hb_n : int;
  hb_events : int;
  hb_elapsed : float;
  hb_eps : float;
  hb_words_per_event : float;
  hb_queue_hw : int;
  hb_capacity : int;
}

type e21_row = {
  sh_n : int;
  sh_k : int;
  sh_events : int;
  sh_elapsed : float;
  sh_eps : float;
  sh_windows : int;
  sh_null_windows : int;
  sh_null_fraction : float;
  sh_direct : int;
  sh_busy_s : float;
  sh_pool_wall_s : float;
  sh_speedup : float;
}

let churn_result : churn_result option ref = ref None
let e20_result : e20_row list option ref = ref None
let e21_result : e21_row list option ref = ref None

let emit_sim_core_json () =
  let oc = open_out sim_core_json_file in
  Printf.fprintf oc "{\n  \"bench\": \"sim_core\",\n  \"schema_version\": 3,\n";
  (match !churn_result with
  | None -> Printf.fprintf oc "  \"churn\": null,\n"
  | Some c ->
    Printf.fprintf oc
      {|  "churn": {
    "n": %d,
    "events_target": %d,
    "events_executed": %d,
    "elapsed_s": %.6f,
    "events_per_sec": %.1f,
    "max_live_heap_slots": %d,
    "timers": {
      "set": %d,
      "fired": %d,
      "cancelled": %d,
      "orphaned": %d,
      "reclaimed": %d
    },
    "timer_table": {
      "capacity": %d,
      "max_residency": %d,
      "residency_at_end": %d
    },
    "heap_pop_minor_words": %.1f,
    "obs": %s
  },
|}
      c.ch_n c.ch_target c.ch_events c.ch_elapsed c.ch_eps c.ch_queue_hw c.ch_set c.ch_fired
      c.ch_cancelled c.ch_orphaned c.ch_reclaimed c.ch_capacity c.ch_max_residency
      c.ch_residency_end c.ch_heap_pop_words c.ch_obs_json);
  (match !e20_result with
  | None -> Printf.fprintf oc "  \"e20\": null,\n"
  | Some rows ->
    Printf.fprintf oc "  \"e20\": {\n    \"heartbeat_rows\": [";
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "%s\n      { \"n\": %d, \"events\": %d, \"elapsed_s\": %.6f, \"events_per_sec\": %.1f, \"minor_words_per_event\": %.6f, \"queue_high_water\": %d, \"timer_table_capacity\": %d }"
          (if i = 0 then "" else ",")
          r.hb_n r.hb_events r.hb_elapsed r.hb_eps r.hb_words_per_event r.hb_queue_hw
          r.hb_capacity)
      rows;
    Printf.fprintf oc "\n    ]\n  },\n");
  (match !e21_result with
  | None -> Printf.fprintf oc "  \"e21\": null\n"
  | Some rows ->
    Printf.fprintf oc "  \"e21\": {\n    \"sharded_rows\": [";
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "%s\n      { \"n\": %d, \"shards\": %d, \"events\": %d, \"elapsed_s\": %.6f, \"events_per_sec\": %.1f, \"windows\": %d, \"null_windows\": %d, \"null_window_fraction\": %.4f, \"direct_steps\": %d, \"busy_s\": %.6f, \"pool_wall_s\": %.6f, \"busy_wall_speedup\": %.3f }"
          (if i = 0 then "" else ",")
          r.sh_n r.sh_k r.sh_events r.sh_elapsed r.sh_eps r.sh_windows r.sh_null_windows
          r.sh_null_fraction r.sh_direct r.sh_busy_s r.sh_pool_wall_s r.sh_speedup)
      rows;
    Printf.fprintf oc "\n    ]\n  }\n");
  Printf.fprintf oc "}\n";
  close_out oc

(* Satellite check for the hole-based heap rewrite: the pop path must not
   allocate.  [Heap.sift_down] used to allocate a [ref] per level (and
   [Heap.swap] wrote each slot twice); popping a few thousand ints now has
   to cost zero minor words beyond the two boxed [Gc.minor_words] results
   themselves, for which the threshold leaves a few words of slack. *)
let heap_pop_minor_words () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  for i = 1 to 4096 do
    Sim.Heap.push h ((i * 2654435761) land 0xFFFF)
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 4096 do
    ignore (Sim.Heap.pop_exn h : int)
  done;
  let w1 = Gc.minor_words () in
  w1 -. w0

let sim_core () =
  Tables.heading "SIM-CORE" "Engine hot path: timer-churn throughput and lifecycle accounting";
  let target = sim_core_target () in
  let n = 8 in
  let engine = Sim.Engine.create ~seed:97 ~n ~link:(Sim.Link.synchronous ~delay:1) () in
  (* Timer-dominated churn — the mix a failure-detector layer produces:
     every tick every process arms two timers and cancels one.  Timers
     record no trace events, so the run measures the engine core rather
     than trace allocation. *)
  List.iter
    (fun p ->
      ignore
        (Sim.Engine.every engine p ~phase:0 ~period:1 (fun () ->
             let doomed = Sim.Engine.set_timer engine p ~delay:3 (fun () -> ()) in
             ignore (Sim.Engine.set_timer engine p ~delay:2 (fun () -> ()) : Sim.Engine.timer);
             Sim.Engine.cancel_timer engine doomed)
          : unit -> unit))
    (Sim.Pid.all ~n);
  let t0 = (Sys.time [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) () in
  let steps = ref 0 in
  while !steps < target && Sim.Engine.step engine do
    incr steps
  done;
  let elapsed =
    (Sys.time [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) () -. t0
  in
  let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
  let events_per_sec =
    if elapsed > 0.0 then float_of_int !steps /. elapsed else 0.0
  in
  let residency_end = Sim.Engine.timer_residency engine in
  let table_capacity = Sim.Engine.timer_table_capacity engine in
  (* The engine tracks the high-water on every set_timer, so unlike the old
     sampled-in-timer-callbacks figure it bounds the end-of-run residency
     by construction (sampling missed timers armed after the last callback
     of the run, which reported residency_at_end > max_residency). *)
  let max_residency = lc.Sim.Stats.timer_residency_high_water in
  assert (residency_end <= max_residency);
  let heap_pop_words = heap_pop_minor_words () in
  Tables.table
    ~headers:[ "metric"; "value" ]
    ~rows:
      [
        [ "events executed"; string_of_int lc.Sim.Stats.events_executed ];
        [ "elapsed (s)"; Printf.sprintf "%.3f" elapsed ];
        [ "events/sec"; Printf.sprintf "%.0f" events_per_sec ];
        [ "queue high-water (heap events + pending timers)"; string_of_int lc.Sim.Stats.queue_high_water ];
        [ "timers set"; string_of_int lc.Sim.Stats.timers_set ];
        [ "timers fired"; string_of_int lc.Sim.Stats.timers_fired ];
        [ "timers cancelled"; string_of_int lc.Sim.Stats.timers_cancelled ];
        [ "timers orphaned"; string_of_int lc.Sim.Stats.timers_orphaned ];
        [ "timers reclaimed"; string_of_int lc.Sim.Stats.timers_reclaimed ];
        [ "timer-table capacity (slots ever allocated)"; string_of_int table_capacity ];
        [ "timer-table max residency"; string_of_int max_residency ];
        [ "timer-table residency at end"; string_of_int residency_end ];
        [ "heap pop minor words (4096 pops)"; Printf.sprintf "%.1f" heap_pop_words ];
      ];
  (* Sanity: every set timer is either reclaimed or still resident. *)
  assert (lc.Sim.Stats.timers_set = lc.Sim.Stats.timers_reclaimed + residency_end);
  (* Lifecycle conservation: every set timer ended in exactly one bucket. *)
  assert (
    lc.Sim.Stats.timers_set
    = lc.Sim.Stats.timers_fired + lc.Sim.Stats.timers_cancelled + lc.Sim.Stats.timers_orphaned
      + Sim.Engine.timer_armed engine);
  (* The hole-based heap pop is allocation-free; the slack covers the two
     boxed floats [Gc.minor_words] itself returns. *)
  assert (heap_pop_words <= 64.0);
  churn_result :=
    Some
      {
        ch_n = n;
        ch_target = target;
        ch_events = lc.Sim.Stats.events_executed;
        ch_elapsed = elapsed;
        ch_eps = events_per_sec;
        ch_queue_hw = lc.Sim.Stats.queue_high_water;
        ch_set = lc.Sim.Stats.timers_set;
        ch_fired = lc.Sim.Stats.timers_fired;
        ch_cancelled = lc.Sim.Stats.timers_cancelled;
        ch_orphaned = lc.Sim.Stats.timers_orphaned;
        ch_reclaimed = lc.Sim.Stats.timers_reclaimed;
        ch_capacity = table_capacity;
        ch_max_residency = max_residency;
        ch_residency_end = residency_end;
        ch_heap_pop_words = heap_pop_words;
        ch_obs_json =
          (* The churn mix is timer-only: it sends no messages and opens no
             spans, so the message-path histograms (engine.delivery_latency,
             engine.span_duration) are structurally zero here.  Publishing
             all-zero counts read as a broken recording site — deliveries do
             record into the histogram, test/test_shard.ml pins that — so
             drop never-observed histograms from this snapshot instead. *)
          (let snap = Obs.Registry.snapshot (Sim.Engine.obs engine) in
           Obs.Registry.json_of_snapshot
             (List.filter
                (fun (_, v) ->
                  match v with
                  | Obs.Registry.Histogram { count = 0; _ } -> false
                  | _ -> true)
                snap));
      };
  emit_sim_core_json ();
  Tables.note "Wrote %s (SIM_CORE_EVENTS=%d; set the env var for smoke runs)." sim_core_json_file
    target;
  Tables.note "Timer-table residency stays bounded by in-flight timers — cancellations";
  Tables.note "no longer accumulate for the lifetime of the run."

(* ------------------------------------------------------------------ *)
(* E20: heartbeat-saturated scaling.  n processes, nothing but        *)
(* periodic heartbeat timers — the workload the timer wheel exists    *)
(* for — at n in {100, 1k, 10k}.  Reports events/sec and minor-heap   *)
(* words allocated per event (Gc.minor_words deltas) into             *)
(* BENCH_sim_core.json, and asserts the steady-state pop/fire/re-arm  *)
(* cycle allocates nothing.                                           *)
(* ------------------------------------------------------------------ *)

let e20_default_events = 500_000

let e20_sizes () =
  (* ECFD_E20_NS="100,1000" trims the sweep (CI's alloc gate needs only the
     n=1000 cell). *)
  let parse s =
    let parts = String.split_on_char ',' (String.trim s) in
    let ns = List.filter_map int_of_string_opt (List.map String.trim parts) in
    match List.filter (fun n -> n > 0) ns with [] -> None | ns -> Some ns
  in
  match Sys.getenv_opt "ECFD_E20_NS" with
  | Some s -> ( match parse s with Some ns -> ns | None -> [ 100; 1_000; 10_000 ])
  | None -> [ 100; 1_000; 10_000 ]

let e20_events () =
  match Sys.getenv_opt "ECFD_E20_EVENTS" with
  | Some s -> (
    match int_of_string_opt s with Some v when v > 0 -> v | _ -> e20_default_events)
  | None -> e20_default_events

(* Wall-clock budget for the whole sweep: a size only starts while the
   budget has room, so the n=10000 row runs by default on any development
   machine (it costs well under a second) but a pathologically slow host
   or an oversized ECFD_E20_EVENTS can't hang CI. *)
let e20_default_budget_s = 60.0

let e20_budget_s () =
  match Sys.getenv_opt "ECFD_E20_BUDGET_S" with
  | Some s -> (
    match float_of_string_opt s with Some v when v > 0.0 -> v | _ -> e20_default_budget_s)
  | None -> e20_default_budget_s

let e20_run_one ~n ~events =
  let engine = Sim.Engine.create ~seed:131 ~n ~link:(Sim.Link.synchronous ~delay:1) () in
  (* Heartbeat mix: periods 1..4 ticks, phases staggered so ticks carry a
     blend of timers from different wheels slots. *)
  List.iter
    (fun p ->
      ignore
        (Sim.Engine.every engine p ~phase:(1 + (p mod 7)) ~period:(1 + (p mod 4)) (fun () -> ())
          : unit -> unit))
    (Sim.Pid.all ~n);
  (* Warm-up: grow the registry columns, wheel, free stack and firing
     batch to steady state before the measured window. *)
  let warm = Stdlib.max (4 * n) 20_000 in
  let steps = ref 0 in
  while !steps < warm && Sim.Engine.step engine do
    incr steps
  done;
  let measured = ref 0 in
  let t0 = (Sys.time [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) () in
  let w0 = Gc.minor_words () in
  while !measured < events && Sim.Engine.step engine do
    incr measured
  done;
  let w1 = Gc.minor_words () in
  let elapsed =
    (Sys.time [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) () -. t0
  in
  let words_per_event = (w1 -. w0) /. float_of_int (Stdlib.max 1 !measured) in
  (* The measured window is pure heartbeat pop/fire/re-arm: the acceptance
     bar is zero minor-heap allocation per occurrence.  0.01 words/event of
     slack absorbs the boxed floats of the measurement itself. *)
  assert (words_per_event < 0.01);
  let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
  {
    hb_n = n;
    hb_events = !measured;
    hb_elapsed = elapsed;
    hb_eps = (if elapsed > 0.0 then float_of_int !measured /. elapsed else 0.0);
    hb_words_per_event = words_per_event;
    hb_queue_hw = lc.Sim.Stats.queue_high_water;
    hb_capacity = Sim.Engine.timer_table_capacity engine;
  }

let alloc_budget_file () =
  match Sys.getenv_opt "ECFD_ALLOC_BUDGET_FILE" with
  | Some f -> f
  | None -> "bench/alloc_budget.json"

(* Minimal extraction of "minor_words_per_event_budget": <float> from the
   checked-in budget JSON — no JSON dependency in the bench harness. *)
let read_alloc_budget file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let key = "\"minor_words_per_event_budget\"" in
  let rec find i =
    if i + String.length key > String.length s then None
    else if String.sub s i (String.length key) = key then Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let i = ref i in
    while !i < String.length s && (s.[!i] = ':' || s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
    let j = ref !i in
    while
      !j < String.length s
      && (match s.[!j] with '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.sub s !i (!j - !i))

(* CI alloc gate: compare the e20 n=1000 cell against the checked-in
   budget; >10% over is a regression and fails the run. *)
let e20_alloc_gate rows =
  match Sys.getenv_opt "ECFD_ALLOC_GATE" with
  | Some "1" -> (
    match List.find_opt (fun r -> r.hb_n = 1_000) rows with
    | None ->
      Printf.eprintf "e20 alloc gate: no n=1000 row (set ECFD_E20_NS to include 1000)\n%!";
      exit 2
    | Some r -> (
      match read_alloc_budget (alloc_budget_file ()) with
      | None ->
        Printf.eprintf "e20 alloc gate: cannot read budget from %s\n%!" (alloc_budget_file ());
        exit 2
      | Some budget ->
        let limit = budget *. 1.10 in
        if r.hb_words_per_event > limit then begin
          Printf.eprintf
            "e20 alloc gate: FAIL — %.6f minor words/event exceeds budget %.6f (+10%% = %.6f)\n%!"
            r.hb_words_per_event budget limit;
          exit 2
        end
        else
          Printf.eprintf "e20 alloc gate: ok — %.6f minor words/event within budget %.6f\n%!"
            r.hb_words_per_event budget))
  | Some _ | None -> ()

let e20 () =
  Tables.heading "E20" "Heartbeat-saturated scaling: events/sec and allocs/event on the wheel";
  let events = e20_events () in
  let budget = e20_budget_s () in
  let t_sweep =
    (Sys.time
     [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) ()
  in
  let spent () =
    (Sys.time
     [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) ()
    -. t_sweep
  in
  let rows, skipped =
    List.fold_left
      (fun (rows, skipped) n ->
        if spent () > budget then (rows, n :: skipped)
        else (e20_run_one ~n ~events :: rows, skipped))
      ([], []) (e20_sizes ())
  in
  let rows = List.rev rows and skipped = List.rev skipped in
  if skipped <> [] then
    Tables.note "Time budget %.0fs exhausted; skipped n in {%s} (raise ECFD_E20_BUDGET_S)."
      budget
      (String.concat ", " (List.map string_of_int skipped));
  Tables.table
    ~headers:
      [ "n"; "events"; "elapsed (s)"; "events/sec"; "minor words/event"; "queue hw"; "capacity" ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.hb_n;
             string_of_int r.hb_events;
             Printf.sprintf "%.3f" r.hb_elapsed;
             Printf.sprintf "%.0f" r.hb_eps;
             Printf.sprintf "%.6f" r.hb_words_per_event;
             string_of_int r.hb_queue_hw;
             string_of_int r.hb_capacity;
           ])
         rows);
  Tables.note "Steady-state heartbeat pop/fire/re-arm allocates no minor-heap words";
  Tables.note "(measured via Gc.minor_words deltas over the window; asserted < 0.01/event).";
  e20_result := Some rows;
  emit_sim_core_json ();
  Tables.note "Wrote %s (ECFD_E20_NS / ECFD_E20_EVENTS trim the sweep)." sim_core_json_file;
  e20_alloc_gate rows

(* ------------------------------------------------------------------ *)
(* E21: sharded-engine scaling.  The e20 heartbeat mix plus a sparse  *)
(* cross-shard ring, run through the conservative parallel back-end   *)
(* at K in {1, 2, 4, 8} shards, n in {1k, 10k}.  Reports events/sec,  *)
(* window count, null-window fraction and the pool's busy/wall        *)
(* speedup into BENCH_sim_core.json.  K = 1 is the exact sequential   *)
(* code path — the baseline every other row is byte-identical to.     *)
(* ------------------------------------------------------------------ *)

let e21_default_ticks = 300

let e21_ints_env var default =
  let parse s =
    let parts = String.split_on_char ',' (String.trim s) in
    let vs = List.filter_map int_of_string_opt (List.map String.trim parts) in
    match List.filter (fun v -> v > 0) vs with [] -> None | vs -> Some vs
  in
  match Sys.getenv_opt var with
  | Some s -> ( match parse s with Some vs -> vs | None -> default)
  | None -> default

let e21_sizes () = e21_ints_env "ECFD_E21_NS" [ 1_000; 10_000 ]
let e21_shards () = e21_ints_env "ECFD_E21_KS" [ 1; 2; 4; 8 ]

let e21_ticks () =
  match Sys.getenv_opt "ECFD_E21_TICKS" with
  | Some s -> (
    match int_of_string_opt s with Some v when v > 0 -> v | _ -> e21_default_ticks)
  | None -> e21_default_ticks

let e21_wall () =
  (Unix.gettimeofday
   [@lint.allow ambient "wall-clock throughput of a parallel section; reads no simulated state"])
    ()

let e21_run_one ~n ~k ~ticks =
  (* Synchronous delay 8 = lookahead 8: each parallel window spans 8 ticks
     of per-shard heartbeat work between barriers. *)
  let engine =
    Sim.Engine.create ~seed:173 ~shards:k ~n ~link:(Sim.Link.synchronous ~delay:8) ()
  in
  List.iter
    (fun p ->
      ignore
        (Sim.Engine.every engine p ~phase:(1 + (p mod 7)) ~period:(1 + (p mod 4)) (fun () -> ())
          : unit -> unit))
    (Sim.Pid.all ~n);
  (* Sparse ring traffic so windows also carry cross-shard mailbox
     exchanges: every 64th process pings its successor every 16 ticks. *)
  let component = "e21.ring" in
  List.iter
    (fun p -> Sim.Engine.register engine ~component p (fun ~src:_ _payload -> ()))
    (Sim.Pid.all ~n);
  let rec pingers p acc = if p >= n then List.rev acc else pingers (p + 64) (p :: acc) in
  List.iter
    (fun p ->
      ignore
        (Sim.Engine.every engine p ~phase:(1 + (p mod 16)) ~period:16 (fun () ->
             Sim.Engine.send engine ~component ~tag:"ping" ~src:p ~dst:((p + 1) mod n)
               Sim.Payload.Blank)
          : unit -> unit))
    (pingers 0 []);
  Exec.Pool.reset_metrics ();
  let t0 = e21_wall () in
  Sim.Engine.run_until engine ticks;
  let elapsed = e21_wall () -. t0 in
  let pool = Exec.Pool.metrics () in
  let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
  let windows, null_windows, direct, _ = Sim.Engine.window_stats engine in
  let events = lc.Sim.Stats.events_executed in
  {
    sh_n = n;
    sh_k = k;
    sh_events = events;
    sh_elapsed = elapsed;
    sh_eps = (if elapsed > 0.0 then float_of_int events /. elapsed else 0.0);
    sh_windows = windows;
    sh_null_windows = null_windows;
    sh_null_fraction =
      (if windows > 0 then float_of_int null_windows /. float_of_int windows else 0.0);
    sh_direct = direct;
    sh_busy_s = pool.Exec.Pool.busy_s;
    sh_pool_wall_s = pool.Exec.Pool.wall_s;
    sh_speedup =
      (if pool.Exec.Pool.wall_s > 0.0 then pool.Exec.Pool.busy_s /. pool.Exec.Pool.wall_s
       else 1.0);
  }

let e21 () =
  Tables.heading "E21" "Sharded simulation: conservative parallel windows at K shards";
  let ticks = e21_ticks () in
  let rows =
    List.concat_map
      (fun n -> List.map (fun k -> e21_run_one ~n ~k ~ticks) (e21_shards ()))
      (e21_sizes ())
  in
  Tables.table
    ~headers:
      [ "n"; "K"; "events"; "elapsed (s)"; "events/sec"; "windows"; "null %"; "busy/wall" ]
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.sh_n;
             string_of_int r.sh_k;
             string_of_int r.sh_events;
             Printf.sprintf "%.3f" r.sh_elapsed;
             Printf.sprintf "%.0f" r.sh_eps;
             string_of_int r.sh_windows;
             Printf.sprintf "%.1f" (100.0 *. r.sh_null_fraction);
             Printf.sprintf "%.2f" r.sh_speedup;
           ])
         rows);
  Tables.note "K = 1 is the sequential engine; all rows produce byte-identical traces.";
  Tables.note "busy/wall is the Domain pool's achieved speedup inside parallel windows.";
  e21_result := Some rows;
  emit_sim_core_json ();
  Tables.note "Wrote %s (ECFD_E21_NS / ECFD_E21_KS / ECFD_E21_TICKS trim the sweep)."
    sim_core_json_file

let run () =
  Tables.heading "B1-B4" "Bechamel micro-benchmarks of the reproduction substrate";
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [ bench_engine_events; bench_ring; bench_consensus; bench_spec ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.3f ms" (t /. 1e6)
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; estimate; r2 ] :: acc)
      results []
    |> List.sort (List.compare String.compare)
  in
  Tables.table ~headers:[ "benchmark"; "time/run (OLS)"; "r^2" ] ~rows;
  Tables.note "Monotonic-clock OLS estimates; each run rebuilds its whole system.";
  (* One representative run's lifecycle accounting, so regressions in event
     or timer volume (not just wall clock) are visible in the report. *)
  let engine =
    Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
  in
  let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
  Sim.Engine.run_until engine 500;
  Tables.note "B1 lifecycle: %s"
    (Format.asprintf "%a" Sim.Stats.pp_lifecycle (Sim.Stats.lifecycle (Sim.Engine.stats engine)))
