(* Bechamel micro-benchmarks of the substrate (B1-B4 in DESIGN.md):
   wall-clock cost of the simulator and of complete protocol runs.  These
   are about the reproduction artefact itself, not the paper's claims —
   they answer "how expensive is one experiment?". *)

open Bechamel
open Toolkit

(* B1: raw engine throughput — events through the queue. *)
let bench_engine_events =
  Test.make ~name:"b1: engine, heartbeat <>P n=8, 500 ticks"
    (Staged.stage (fun () ->
         let engine =
           Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
         in
         let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
         Sim.Engine.run_until engine 500))

(* B2: the ring detector, whose epoch-vector piggybacking is the heaviest
   per-message work in the FD layer. *)
let bench_ring =
  Test.make ~name:"b2: ring <>S n=16, 500 ticks, one crash"
    (Staged.stage (fun () ->
         let engine =
           Sim.Engine.create ~seed:2 ~n:16 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
         in
         Sim.Fault.apply engine (Sim.Fault.crash 5 ~at:100);
         let _ = Fd.Ring_s.install engine Fd.Ring_s.default_params in
         Sim.Engine.run_until engine 500))

(* B3: one complete <>C consensus instance over the full stack. *)
let bench_consensus =
  Test.make ~name:"b3: <>C consensus n=5, full stack, to decision"
    (Staged.stage (fun () ->
         let r =
           Scenario.run_consensus ~net:{ Scenario.default_net with seed = 3 } ~horizon:500 ~n:5
             ~detector:Scenario.Ec_from_leader
             ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
         in
         assert (Spec.Consensus_props.decision_round r.Scenario.trace <> None)))

(* B4: trace checking — the Spec layer over a finished run. *)
let bench_spec =
  let r =
    Scenario.run_consensus ~net:{ Scenario.default_net with seed = 4 } ~horizon:3000 ~n:6
      ~crashes:(Sim.Fault.crash 1 ~at:50) ~detector:Scenario.Ec_from_leader
      ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
  in
  let run =
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component r.Scenario.fd) ~n:6 r.Scenario.trace
  in
  Test.make ~name:"b4: property checking of a finished trace"
    (Staged.stage (fun () ->
         ignore (Spec.Fd_props.satisfies_class Fd.Classes.Ec run);
         ignore (Spec.Consensus_props.check_all r.Scenario.trace ~n:6)))

(* ------------------------------------------------------------------ *)
(* Sim-core lifecycle bench: events/sec through the engine hot path   *)
(* and resource-accounting counters, emitted as BENCH_sim_core.json   *)
(* so successive PRs can track the engine's perf trajectory.          *)
(* ------------------------------------------------------------------ *)

let sim_core_default_events = 1_000_000

let sim_core_target () =
  (* SIM_CORE_EVENTS=2000 gives CI a smoke run that still exercises the
     whole measurement + JSON path. *)
  match Sys.getenv_opt "SIM_CORE_EVENTS" with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> sim_core_default_events)
  | None -> sim_core_default_events

let sim_core_json_file = "BENCH_sim_core.json"

let sim_core () =
  Tables.heading "SIM-CORE" "Engine hot path: timer-churn throughput and lifecycle accounting";
  let target = sim_core_target () in
  let n = 8 in
  let engine = Sim.Engine.create ~seed:97 ~n ~link:(Sim.Link.synchronous ~delay:1) () in
  (* Timer-dominated churn — the mix a failure-detector layer produces:
     every tick every process arms two timers and cancels one.  Timers
     record no trace events, so the run measures the engine core rather
     than trace allocation. *)
  List.iter
    (fun p ->
      ignore
        (Sim.Engine.every engine p ~phase:0 ~period:1 (fun () ->
             let doomed = Sim.Engine.set_timer engine p ~delay:3 (fun () -> ()) in
             ignore (Sim.Engine.set_timer engine p ~delay:2 (fun () -> ()) : Sim.Engine.timer);
             Sim.Engine.cancel_timer engine doomed)
          : unit -> unit))
    (Sim.Pid.all ~n);
  let t0 = (Sys.time [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) () in
  let steps = ref 0 in
  while !steps < target && Sim.Engine.step engine do
    incr steps
  done;
  let elapsed =
    (Sys.time [@lint.allow ambient "host-CPU throughput measurement; reads no simulated state"]) () -. t0
  in
  let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
  let events_per_sec =
    if elapsed > 0.0 then float_of_int !steps /. elapsed else 0.0
  in
  let residency_end = Sim.Engine.timer_residency engine in
  let table_capacity = Sim.Engine.timer_table_capacity engine in
  (* The engine tracks the high-water on every set_timer, so unlike the old
     sampled-in-timer-callbacks figure it bounds the end-of-run residency
     by construction (sampling missed timers armed after the last callback
     of the run, which reported residency_at_end > max_residency). *)
  let max_residency = lc.Sim.Stats.timer_residency_high_water in
  assert (residency_end <= max_residency);
  Tables.table
    ~headers:[ "metric"; "value" ]
    ~rows:
      [
        [ "events executed"; string_of_int lc.Sim.Stats.events_executed ];
        [ "elapsed (s)"; Printf.sprintf "%.3f" elapsed ];
        [ "events/sec"; Printf.sprintf "%.0f" events_per_sec ];
        [ "queue high-water (max live heap slots)"; string_of_int lc.Sim.Stats.queue_high_water ];
        [ "timers set"; string_of_int lc.Sim.Stats.timers_set ];
        [ "timers fired"; string_of_int lc.Sim.Stats.timers_fired ];
        [ "timers cancelled"; string_of_int lc.Sim.Stats.timers_cancelled ];
        [ "timers reclaimed"; string_of_int lc.Sim.Stats.timers_reclaimed ];
        [ "timer-table capacity (slots ever allocated)"; string_of_int table_capacity ];
        [ "timer-table max residency"; string_of_int max_residency ];
        [ "timer-table residency at end"; string_of_int residency_end ];
      ];
  (* Sanity: every set timer is either reclaimed or still resident. *)
  assert (lc.Sim.Stats.timers_set = lc.Sim.Stats.timers_reclaimed + residency_end);
  let oc = open_out sim_core_json_file in
  Printf.fprintf oc
    {|{
  "bench": "sim_core",
  "schema_version": 1,
  "n": %d,
  "events_target": %d,
  "events_executed": %d,
  "elapsed_s": %.6f,
  "events_per_sec": %.1f,
  "max_live_heap_slots": %d,
  "timers": {
    "set": %d,
    "fired": %d,
    "cancelled": %d,
    "reclaimed": %d
  },
  "timer_table": {
    "capacity": %d,
    "max_residency": %d,
    "residency_at_end": %d
  },
  "obs": %s
}
|}
    n target lc.Sim.Stats.events_executed elapsed events_per_sec
    lc.Sim.Stats.queue_high_water lc.Sim.Stats.timers_set lc.Sim.Stats.timers_fired
    lc.Sim.Stats.timers_cancelled lc.Sim.Stats.timers_reclaimed table_capacity max_residency
    residency_end
    (Obs.Registry.json_of_snapshot (Obs.Registry.snapshot (Sim.Engine.obs engine)));
  close_out oc;
  Tables.note "Wrote %s (SIM_CORE_EVENTS=%d; set the env var for smoke runs)." sim_core_json_file
    target;
  Tables.note "Timer-table residency stays bounded by in-flight timers — cancellations";
  Tables.note "no longer accumulate for the lifetime of the run."

let run () =
  Tables.heading "B1-B4" "Bechamel micro-benchmarks of the reproduction substrate";
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [ bench_engine_events; bench_ring; bench_consensus; bench_spec ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.3f ms" (t /. 1e6)
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; estimate; r2 ] :: acc)
      results []
    |> List.sort (List.compare String.compare)
  in
  Tables.table ~headers:[ "benchmark"; "time/run (OLS)"; "r^2" ] ~rows;
  Tables.note "Monotonic-clock OLS estimates; each run rebuilds its whole system.";
  (* One representative run's lifecycle accounting, so regressions in event
     or timer volume (not just wall clock) are visible in the report. *)
  let engine =
    Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
  in
  let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
  Sim.Engine.run_until engine 500;
  Tables.note "B1 lifecycle: %s"
    (Format.asprintf "%a" Sim.Stats.pp_lifecycle (Sim.Stats.lifecycle (Sim.Engine.stats engine)))
