(* Bechamel micro-benchmarks of the substrate (B1-B4 in DESIGN.md):
   wall-clock cost of the simulator and of complete protocol runs.  These
   are about the reproduction artefact itself, not the paper's claims —
   they answer "how expensive is one experiment?". *)

open Bechamel
open Toolkit

(* B1: raw engine throughput — events through the queue. *)
let bench_engine_events =
  Test.make ~name:"b1: engine, heartbeat <>P n=8, 500 ticks"
    (Staged.stage (fun () ->
         let engine =
           Sim.Engine.create ~seed:1 ~n:8 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
         in
         let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
         Sim.Engine.run_until engine 500))

(* B2: the ring detector, whose epoch-vector piggybacking is the heaviest
   per-message work in the FD layer. *)
let bench_ring =
  Test.make ~name:"b2: ring <>S n=16, 500 ticks, one crash"
    (Staged.stage (fun () ->
         let engine =
           Sim.Engine.create ~seed:2 ~n:16 ~link:(Sim.Link.reliable ~min_delay:1 ~max_delay:8 ()) ()
         in
         Sim.Fault.apply engine (Sim.Fault.crash 5 ~at:100);
         let _ = Fd.Ring_s.install engine Fd.Ring_s.default_params in
         Sim.Engine.run_until engine 500))

(* B3: one complete <>C consensus instance over the full stack. *)
let bench_consensus =
  Test.make ~name:"b3: <>C consensus n=5, full stack, to decision"
    (Staged.stage (fun () ->
         let r =
           Scenario.run_consensus ~net:{ Scenario.default_net with seed = 3 } ~horizon:500 ~n:5
             ~detector:Scenario.Ec_from_leader
             ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
         in
         assert (Spec.Consensus_props.decision_round r.Scenario.trace <> None)))

(* B4: trace checking — the Spec layer over a finished run. *)
let bench_spec =
  let r =
    Scenario.run_consensus ~net:{ Scenario.default_net with seed = 4 } ~horizon:3000 ~n:6
      ~crashes:(Sim.Fault.crash 1 ~at:50) ~detector:Scenario.Ec_from_leader
      ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
  in
  let run =
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component r.Scenario.fd) ~n:6 r.Scenario.trace
  in
  Test.make ~name:"b4: property checking of a finished trace"
    (Staged.stage (fun () ->
         ignore (Spec.Fd_props.satisfies_class Fd.Classes.Ec run);
         ignore (Spec.Consensus_props.check_all r.Scenario.trace ~n:6)))

let run () =
  Tables.heading "B1-B4" "Bechamel micro-benchmarks of the reproduction substrate";
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [ bench_engine_events; bench_ring; bench_consensus; bench_spec ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.3f ms" (t /. 1e6)
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; estimate; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Tables.table ~headers:[ "benchmark"; "time/run (OLS)"; "r^2" ] ~rows;
  Tables.note "Monotonic-clock OLS estimates; each run rebuilds its whole system."
