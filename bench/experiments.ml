(* The paper's evaluation, regenerated (see DESIGN.md §3 for the index).

   Every experiment prints a table of paper-claim vs measured values;
   EXPERIMENTS.md records a reference run of this file. *)

let sweep_ns = [ 4; 8; 16; 32 ]
let seeds = [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Parallel grids                                                     *)
(* ------------------------------------------------------------------ *)

(* Every experiment enumerates its (subject, seed, n) grid as pure job
   closures and runs them through the domain pool: each job builds its own
   engine from explicit inputs and returns plain data; no job prints or
   touches state shared with another job.  [Exec.Pool.run] hands results
   back in grid order whatever the domain count, and all table rendering
   happens afterwards on the calling domain — so the harness output is
   byte-identical at ECFD_DOMAINS=1 and ECFD_DOMAINS=8. *)

let par_map xs f = Exec.Pool.run (List.map (fun x () -> f x) xs)

(* Regroup a flat grid-order result list into rows of [k]. *)
let rec chunk k = function
  | [] -> []
  | flat ->
    let rec take i acc rest =
      match (i, rest) with
      | 0, _ -> (List.rev acc, rest)
      | _, x :: rest -> take (i - 1) (x :: acc) rest
      | _, [] -> invalid_arg "Experiments.chunk: ragged grid"
    in
    let row, rest = take k [] flat in
    row :: chunk k rest

(* The full [xs × ys] grid as one job list; results come back as one list
   per [x] (in [ys] order), so call sites can render per-row aggregates. *)
let par_map2 xs ys f =
  chunk (List.length ys)
    (Exec.Pool.run (List.concat_map (fun x -> List.map (fun y () -> f x y) ys) xs))

let par_map3 xs ys zs f =
  let flat =
    Exec.Pool.run
      (List.concat_map
         (fun x -> List.concat_map (fun y -> List.map (fun z () -> f x y z) zs) ys)
         xs)
  in
  List.map (chunk (List.length zs)) (chunk (List.length ys * List.length zs) flat)

(* ------------------------------------------------------------------ *)
(* E1 — Fig. 1 + Definition 1: the class matrix                       *)
(* ------------------------------------------------------------------ *)

(* The subjects: each detector stack with the class the paper assigns it. *)
type subject = {
  label : string;
  claimed : Fd.Classes.t;
  build : Sim.Engine.t -> Sim.Fault.t -> Fd.Fd_handle.t;
}

let subjects =
  let scenario d = fun engine _schedule -> Scenario.install_detector engine d in
  [
    { label = "heartbeat <>P [6]"; claimed = Fd.Classes.P_eventual; build = scenario Scenario.Heartbeat_p };
    { label = "ring <>S [15]"; claimed = Fd.Classes.S_eventual; build = scenario Scenario.Ring_s };
    { label = "ring, no propagation (<>W)"; claimed = Fd.Classes.W_eventual; build = scenario Scenario.Ring_w };
    { label = "leader <>S [16]"; claimed = Fd.Classes.S_eventual; build = scenario Scenario.Leader_s };
    { label = "<>C from leader <>S (S3)"; claimed = Fd.Classes.Ec; build = scenario Scenario.Ec_from_leader };
    { label = "<>C from ring <>S (S3)"; claimed = Fd.Classes.Ec; build = scenario Scenario.Ec_from_ring };
    {
      label = "<>C from Omega (Chu) (S3)";
      claimed = Fd.Classes.Ec;
      build = scenario Scenario.Ec_from_omega_chu;
    };
    {
      label = "<>C from heartbeat <>P (S3)";
      claimed = Fd.Classes.Ec;
      build = scenario Scenario.Ec_from_heartbeat;
    };
    {
      label = "<>C from P oracle (S3)";
      claimed = Fd.Classes.Ec;
      build = (fun engine schedule -> Scenario.install_detector engine (Scenario.Ec_from_perfect schedule));
    };
    {
      label = "<>C -> <>P (Fig. 2)";
      claimed = Fd.Classes.P_eventual;
      build =
        (fun engine _ ->
          let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
          let ec = Ecfd.Ec.of_leader_s base ~engine in
          Ecfd.Ec_to_p.install engine ~underlying:ec Ecfd.Ec_to_p.default_params);
    };
  ]

let e1 () =
  Tables.heading "E1" "Class matrix (Fig. 1 + Definition 1): which properties hold empirically";
  let n = 5 in
  let horizon = 9000 in
  let run_subject subject seed =
    let net = { (Scenario.chaotic_net ~seed ~gst:250 ()) with delta = 8 } in
    let engine = Scenario.engine ~net ~n () in
    let schedule = Sim.Fault.crash 2 ~at:400 in
    Sim.Fault.apply engine schedule;
    let handle = subject.build engine schedule in
    Sim.Engine.run_until engine horizon;
    Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component handle) ~n (Sim.Engine.trace engine)
  in
  let headers = [ "detector (claimed class)"; "SC"; "WC"; "<>SA"; "<>WA"; "leader"; "t!in!s" ] in
  (* One simulation per (subject, seed) pair, all six properties evaluated
     on it; the whole grid runs through the pool at once. *)
  let runs_by_subject = par_map2 subjects seeds run_subject in
  let rows =
    List.map2
      (fun subject runs ->
        let cell prop =
          let ok =
            List.for_all (fun run -> (Spec.Fd_props.check prop run).Spec.Fd_props.holds) runs
          in
          let claimed = List.mem prop (Fd.Classes.implied_properties subject.claimed) in
          match (ok, claimed) with
          | true, true -> "yes*"
          | true, false -> "yes"
          | false, false -> "-"
          | false, true -> "MISSING"
        in
        Printf.sprintf "%s: %s" subject.label (Fd.Classes.name subject.claimed)
        :: List.map cell Fd.Classes.all_properties)
      subjects runs_by_subject
  in
  Tables.table ~headers ~rows;
  Tables.note
    "SC/WC = strong/weak completeness, <>SA/<>WA = eventual strong/weak accuracy,";
  Tables.note "leader = Property 1 (Omega), t!in!s = eventually trusted not suspected.";
  Tables.note "'yes*' = holds and guaranteed by the claimed class; 'yes' = held on these";
  Tables.note "benign runs though not guaranteed; '-' = does not hold (as expected);";
  Tables.note "'MISSING' would be a reproduction failure.  %d seeds, n=%d, one crash, GST=250."
    (List.length seeds) n

(* ------------------------------------------------------------------ *)
(* E2 — Section 4: periodic message cost of <>P implementations       *)
(* ------------------------------------------------------------------ *)

let period_cost ~n ~periods ~component build =
  (* Run long enough to stabilise, then count [periods] periods' sends. *)
  let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 5 } ~n () in
  build engine;
  let period = 10 in
  Sim.Engine.run_until engine 2000;
  let snap = Sim.Stats.snapshot (Sim.Engine.stats engine) in
  Sim.Engine.run_until engine (2000 + (periods * period));
  let sent =
    List.fold_left
      (fun acc c -> acc + Sim.Stats.sent_since (Sim.Engine.stats engine) snap ~component:c)
      0 component
  in
  float_of_int sent /. float_of_int periods

let e2 () =
  Tables.heading "E2"
    "Cost of <>P implementations (Section 4): messages sent per period, steady state";
  let heartbeat engine = ignore (Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params) in
  let ring engine = ignore (Fd.Ring_s.install engine Fd.Ring_s.default_params) in
  let standalone engine =
    let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
    let ec = Ecfd.Ec.of_leader_s base ~engine in
    ignore (Ecfd.Ec_to_p.install engine ~underlying:ec Ecfd.Ec_to_p.default_params)
  in
  let piggyback engine =
    let hooks = Fd.Leader_s.make_hooks () in
    let base = Fd.Leader_s.install ~hooks engine Fd.Leader_s.default_params in
    let ec = Ecfd.Ec.of_leader_s base ~engine in
    ignore (Ecfd.Ec_to_p.install_piggybacked engine ~hooks ~underlying:ec Ecfd.Ec_to_p.default_params)
  in
  let fd_components = [ Fd.Leader_s.component; Ecfd.Ec_to_p.component ] in
  let variants =
    [
      ([ Fd.Heartbeat_p.component ], heartbeat);
      ([ Fd.Ring_s.component ], ring);
      (fd_components, standalone);
      (fd_components, piggyback);
    ]
  in
  let measured =
    par_map2 sweep_ns variants (fun n (components, build) ->
        period_cost ~n ~periods:50 ~component:components build)
  in
  let rows =
    List.concat
      (List.map2
         (fun n cells ->
           match cells with
           | [ hb; rg; sa; pb ] ->
             [
               [ Tables.fi n; "Chandra-Toueg <>P [6]"; Printf.sprintf "n(n-1) = %d" (n * (n - 1));
                 Tables.ff hb ];
               [ ""; "ring <>S/<>P [15]"; Printf.sprintf "2n = %d" (2 * n); Tables.ff rg ];
               [ ""; "Fig. 2 stand-alone (+ leader <>S)"; Printf.sprintf "3(n-1) = %d" (3 * (n - 1));
                 Tables.ff sa ];
               [ ""; "Fig. 2 piggybacked (+ leader <>S)"; Printf.sprintf "2(n-1) = %d" (2 * (n - 1));
                 Tables.ff pb ];
             ]
           | _ -> assert false)
         sweep_ns measured)
  in
  Tables.table ~headers:[ "n"; "implementation"; "paper"; "measured" ] ~rows;
  Tables.note "The paper's claim: the piggybacked construction costs 2(n-1) per period,";
  Tables.note "'comparing favorably' to n^2 [6] and 'slightly better' than 2n [15].";
  Tables.note "(Crossover with the ring: 2(n-1) < 2n for every n.)"

(* ------------------------------------------------------------------ *)
(* E3 — Section 4: crash-detection latency                            *)
(* ------------------------------------------------------------------ *)

let e3 () =
  Tables.heading "E3"
    "Crash-detection latency (Section 4): ring list propagation vs leader push";
  let crash_at = 2000 in
  let latency ~n ~seed build component =
    let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
    let victim = n / 2 in
    Sim.Fault.apply engine (Sim.Fault.crash victim ~at:crash_at);
    build engine;
    Sim.Engine.run_until engine (crash_at + 4000);
    let run = Spec.Fd_props.make_run ~component ~n (Sim.Engine.trace engine) in
    Option.map (fun t -> t - crash_at) (Spec.Fd_props.detection_time run ~victim)
  in
  let ring engine = ignore (Fd.Ring_s.install engine Fd.Ring_s.default_params) in
  let transform engine =
    let hooks = Fd.Leader_s.make_hooks () in
    let base = Fd.Leader_s.install ~hooks engine Fd.Leader_s.default_params in
    let ec = Ecfd.Ec.of_leader_s base ~engine in
    ignore
      (Ecfd.Ec_to_p.install_piggybacked engine ~hooks ~underlying:ec Ecfd.Ec_to_p.default_params)
  in
  let heartbeat engine = ignore (Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params) in
  let ns = [ 8; 16; 32 ] in
  let detectors =
    [
      (ring, Fd.Ring_s.component);
      (transform, Ecfd.Ec_to_p.component);
      (heartbeat, Fd.Heartbeat_p.component);
    ]
  in
  let grid =
    par_map3 ns detectors seeds (fun n (build, component) seed ->
        latency ~n ~seed build component)
  in
  let rows =
    List.map2
      (fun n per_detector ->
        Tables.fi n
        :: List.map
             (fun per_seed -> Tables.ff (Tables.mean (List.filter_map Fun.id per_seed)))
             per_detector)
      ns grid
  in
  Tables.table
    ~headers:[ "n"; "ring <>S/<>P [15]"; "Fig. 2 transformation"; "heartbeat <>P [6]" ]
    ~rows;
  Tables.note "Ticks from the crash until every correct process suspects it for good";
  Tables.note "(mean over %d seeds; heartbeat/list periods 10, initial time-out 30)."
    (List.length seeds);
  Tables.note "Paper's claim: the transformation avoids the ring's 'high latency in crash";
  Tables.note "detection (due to the propagation of the list over the ring)' — the ring's";
  Tables.note "latency grows with n while the leader-push stays flat, at a fraction of";
  Tables.note "the heartbeat <>P's n^2 message price (see E2)."

(* ------------------------------------------------------------------ *)
(* E4 — Section 5.4: per-round phases and messages                    *)
(* ------------------------------------------------------------------ *)

let stable_round_run ~n ~protocol =
  Scenario.run_consensus ~net:{ Scenario.default_net with seed = 2 } ~n
    ~detector:(Scenario.Scripted_stable 0) ~protocol ()

let protocol_component = function
  | Scenario.Ec _ -> Ecfd.Ec_consensus.component
  | Scenario.Ct -> Consensus.Ct_consensus.component
  | Scenario.Mr -> Consensus.Mr_consensus.component
  | Scenario.Hr -> Consensus.Hr_consensus.component

(* Canonical-run trace export (the CI artifact).  The e4 cell EXPERIMENTS.md
   documents as the Perfetto example — n = 8, <>C consensus, stable scripted
   detector — rendered through both exporters.  The render runs as a pool
   job like any grid cell, and the exported bytes are a pure function of the
   trace, so test_exec checks them byte-identical across domain counts. *)
let e4_trace_exports () =
  match
    Exec.Pool.run
      [
        (fun () ->
          let r =
            stable_round_run ~n:8 ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params)
          in
          ( Sim.Trace_export.chrome_string r.Scenario.trace,
            Sim.Trace_export.jsonl_string r.Scenario.trace ));
      ]
  with
  | [ exports ] -> exports
  | _ -> assert false

(* ECFD_TRACE_EXPORT=1 writes the canonical exports next to the bench JSON.
   The note goes to stderr only: stdout must stay byte-identical whether or
   not the export runs. *)
let maybe_export_e4_traces () =
  if Sys.getenv_opt "ECFD_TRACE_EXPORT" = Some "1" then begin
    let chrome, jsonl = e4_trace_exports () in
    List.iter
      (fun (path, data) ->
        let oc = open_out_bin path in
        output_string oc data;
        close_out oc;
        Printf.eprintf "ecfd-bench: wrote %s\n%!" path)
      [ ("TRACE_e4.chrome.json", chrome); ("TRACE_e4.jsonl", jsonl) ]
  end

let e4 () =
  Tables.heading "E4"
    "Consensus round cost (Section 5.4): phases and messages per stable round";
  let ec = Scenario.Ec Ecfd.Ec_consensus.default_params in
  let cases =
    [
      ("<>C consensus (this paper)", ec, fun n -> Printf.sprintf "4n ~ %d" (4 * (n - 1)));
      ("Chandra-Toueg <>S [6]", Scenario.Ct, fun n -> Printf.sprintf "3n ~ %d" (3 * (n - 1)));
      ("Mostefaoui-Raynal Omega [20]", Scenario.Mr, fun n -> Printf.sprintf "3n^2 ~ %d" (3 * n * (n - 1)));
      ( "Hurfin-Raynal-style <>S [12]",
        Scenario.Hr,
        fun n -> Printf.sprintf "n^2 ~ %d" ((n - 1) + (n * (n - 1))) );
    ]
  in
  let cells =
    par_map2 sweep_ns cases (fun n (_, protocol, _) ->
        let r = stable_round_run ~n ~protocol in
        ( r.Scenario.instance.Consensus.Instance.phases_per_round,
          Spec.Round_metrics.sends_in_round r.Scenario.trace
            ~component:(protocol_component protocol) ~round:1,
          Spec.Consensus_props.decision_round r.Scenario.trace ))
  in
  let rows =
    List.concat
      (List.map2
         (fun n per_case ->
           List.map2
             (fun (label, _, paper) (phases, round1, decided) ->
               [
                 Tables.fi n;
                 label;
                 Tables.fi phases;
                 paper n;
                 Tables.fi round1;
                 (match decided with Some round -> Tables.fi round | None -> "-");
               ])
             cases per_case)
         sweep_ns cells)
  in
  Tables.table
    ~headers:[ "n"; "protocol"; "phases"; "paper msgs/round"; "measured (round 1)"; "decided in" ]
    ~rows;
  Tables.note "Stable detector from the start (leader p1), failure-free, so round 1 is the";
  Tables.note "steady state.  The paper counts a process's message to itself; the simulator";
  Tables.note "treats self-sends as local (4(n-1)/3(n-1)/3n(n-1) vs the paper's 4n/3n/3n^2).";
  Tables.note "The trade-off of Section 5.4 spans all four: 5/4/3/2 communication phases";
  Tables.note "against Theta(n)/Theta(n)/Theta(n^2)/Theta(n^2) messages per round.";
  maybe_export_e4_traces ()

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 3: rounds after stabilisation                         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  Tables.heading "E5"
    "Rounds to decide once the detector is stable (Theorem 3 vs one-round <>C)";
  let ec = Scenario.Ec Ecfd.Ec_consensus.default_params in
  let decision_round ~n ~leader protocol =
    let r =
      Scenario.run_consensus ~net:{ Scenario.default_net with seed = 3 } ~horizon:20_000 ~n
        ~detector:(Scenario.Scripted_stable leader) ~protocol ()
    in
    match Spec.Consensus_props.decision_round r.Scenario.trace with
    | Some round -> Tables.fi round
    | None -> "-"
  in
  List.iter
    (fun n ->
      Format.printf "  n = %d (stable leader at position i; CT's coordinator rotates):@." n;
      let leaders = List.init n Fun.id in
      let grid =
        par_map2 leaders [ Scenario.Ct; Scenario.Hr; ec; Scenario.Mr ]
          (fun leader protocol -> decision_round ~n ~leader protocol)
      in
      let rows =
        List.map2 (fun leader cells -> Tables.fi (leader + 1) :: cells) leaders grid
      in
      Tables.table
        ~headers:[ "leader i"; "CT <>S [6]"; "HR <>S [12]"; "<>C (paper)"; "MR Omega [20]" ]
        ~rows)
    [ 4; 8; 16 ];
  Tables.note "The detector is stable from the start: everyone trusts p_i and suspects";
  Tables.note "everybody else.  The rotating coordinator needs i rounds to reach the one";
  Tables.note "unsuspected process — Omega(n) in the worst case (Theorem 3) — while the";
  Tables.note "leader-driven protocols decide in one round wherever the leader sits."

(* ------------------------------------------------------------------ *)
(* E6 — Section 5.4: NACKs vs the majority of positive replies        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  Tables.heading "E6"
    "Blocking on negative replies (Section 5.4): majority-of-ACKs vs first-majority";
  let n = 7 in
  let horizon = 8000 in
  let run_with_nackers ~nackers protocol_params protocol_of =
    let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 4 } ~n () in
    let accurate = Fd.Scripted.accurate_stable ~leader:0 ~crashed:Sim.Pid.Set.empty in
    let nacker_view = Fd.Fd_view.make ~trusted:0 ~suspected:(Sim.Pid.set_of_list [ 0 ]) () in
    let fd =
      Fd.Scripted.install engine
        ~initial:(fun p -> if p >= n - nackers then nacker_view else accurate p)
        ~steps:[] ()
    in
    let rb = Broadcast.Reliable_broadcast.create engine in
    let inst = protocol_of engine fd rb protocol_params in
    List.iter (fun p -> inst.Consensus.Instance.propose p (100 + p)) (Sim.Pid.all ~n);
    Sim.Engine.run_until engine horizon;
    match Spec.Consensus_props.decision_round (Sim.Engine.trace engine) with
    | Some round -> Printf.sprintf "round %d" round
    | None -> "blocked"
  in
  let ec params engine fd rb () = Ecfd.Ec_consensus.install engine ~fd ~rb params in
  let ct engine fd rb () = Consensus.Ct_consensus.install ~max_rounds:2000 engine ~fd ~rb () in
  let extended = { Ecfd.Ec_consensus.default_params with max_rounds = 2000 } in
  let strict =
    { extended with Ecfd.Ec_consensus.wait_mode = Ecfd.Ec_consensus.Strict_majority }
  in
  let nacker_counts = [ 0; 1; 2; 3 ] in
  let cells =
    par_map2 nacker_counts [ `Extended; `Strict; `Ct ] (fun nackers variant ->
        match variant with
        | `Extended -> run_with_nackers ~nackers () (fun e fd rb () -> ec extended e fd rb ())
        | `Strict -> run_with_nackers ~nackers () (fun e fd rb () -> ec strict e fd rb ())
        | `Ct -> run_with_nackers ~nackers () (fun e fd rb () -> ct e fd rb ()))
  in
  let rows =
    List.map2 (fun nackers cells -> Tables.fi nackers :: cells) nacker_counts cells
  in
  Tables.table
    ~headers:[ "persistent nackers"; "<>C extended wait"; "<>C strict (ablation)"; "CT <>S [6]" ]
    ~rows;
  Tables.note "n=7 (majority 4).  k processes trust the leader but also suspect it";
  Tables.note "forever, NACKing every round.  The paper's extended wait gathers replies";
  Tables.note "from every non-suspected process and decides on a majority of ACKs despite";
  Tables.note "the NACKs; a first-majority rule (the ablation; CT's own Phase 4) sees a";
  Tables.note "NACK among the first replies and can never decide while the leader stands";
  Tables.note "(CT escapes only by rotating to another coordinator: one extra round)."

(* ------------------------------------------------------------------ *)
(* E7 — Section 5.4: merging Phases 0 and 1                           *)
(* ------------------------------------------------------------------ *)

let e7 () =
  Tables.heading "E7" "The phase-merge trade-off (Section 5.4): fewer phases, more messages";
  let classic = Scenario.Ec Ecfd.Ec_consensus.default_params in
  let merged =
    Scenario.Ec { Ecfd.Ec_consensus.default_params with merge_phase01 = true }
  in
  let cells =
    par_map2 sweep_ns [ classic; merged ] (fun n protocol ->
        let r = stable_round_run ~n ~protocol in
        ( r.Scenario.instance.Consensus.Instance.phases_per_round,
          Spec.Round_metrics.sends_in_round r.Scenario.trace
            ~component:Ecfd.Ec_consensus.component ~round:1 ))
  in
  let rows =
    List.concat
      (List.map2
         (fun n per_variant ->
           match per_variant with
           | [ (cphases, cmsgs); (mphases, mmsgs) ] ->
             [
               [ Tables.fi n; "classic (Figs. 3-4)"; Tables.fi cphases;
                 Printf.sprintf "Theta(n) = %d" (4 * (n - 1)); Tables.fi cmsgs ];
               [ ""; "phases 0+1 merged"; Tables.fi mphases;
                 Printf.sprintf "Omega(n^2) = %d" ((n * (n - 1)) + (2 * (n - 1)));
                 Tables.fi mmsgs ];
             ]
           | _ -> assert false)
         sweep_ns cells)
  in
  Tables.table ~headers:[ "n"; "variant"; "phases"; "paper msgs/round"; "measured" ] ~rows;
  Tables.note "Merging Phase 0 into Phase 1 (estimate straight to the leader, null";
  Tables.note "estimates to everybody else) saves one communication step but raises the";
  Tables.note "message count from Theta(n) to Omega(n^2) — the trade-off of Section 5.4."

(* ------------------------------------------------------------------ *)
(* E8 — Section 3: what a <>C construction costs                      *)
(* ------------------------------------------------------------------ *)

let e8 () =
  Tables.heading "E8" "Cost of obtaining <>C (Section 3): free constructions vs Omega reduction";
  let cells =
    par_map2 sweep_ns [ `Leader; `Ring; `Chu ] (fun n route ->
        match route with
        | `Leader ->
          period_cost ~n ~periods:50 ~component:[ Fd.Leader_s.component ] (fun engine ->
              let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
              ignore (Ecfd.Ec.of_leader_s base ~engine))
        | `Ring ->
          period_cost ~n ~periods:50 ~component:[ Fd.Ring_s.component ] (fun engine ->
              let base = Fd.Ring_s.install engine Fd.Ring_s.default_params in
              ignore (Ecfd.Ec.of_ring base ~engine))
        | `Chu ->
          period_cost ~n ~periods:50
            ~component:[ Fd.Ring_s.component; Fd.Omega_from_s.component ]
            (fun engine ->
              let base = Fd.Ring_s.install engine Fd.Ring_s.default_params in
              let omega =
                Fd.Omega_from_s.install engine ~underlying:base Fd.Omega_from_s.default_params
              in
              ignore (Ecfd.Ec.of_omega omega ~engine)))
  in
  let rows =
    List.concat
      (List.map2
         (fun n per_route ->
           match per_route with
           | [ leader_route; ring_route; chu_route_total ] ->
             [
               [ Tables.fi n; "leader <>S [16] + S3 construction";
                 Printf.sprintf "n-1 = %d" (n - 1); Tables.ff leader_route ];
               [ ""; "ring <>S [15] + S3 construction"; Printf.sprintf "2n = %d" (2 * n);
                 Tables.ff ring_route ];
               [ ""; "ring <>S + Chu Omega reduction [5,7]";
                 Printf.sprintf "2n + n(n-1) = %d" ((2 * n) + (n * (n - 1)));
                 Tables.ff chu_route_total ];
             ]
           | _ -> assert false)
         sweep_ns cells)
  in
  Tables.table ~headers:[ "n"; "route to <>C"; "paper msgs/period"; "measured" ] ~rows;
  Tables.note "The Section 3 constructions over suitable <>S detectors add zero messages";
  Tables.note "(E1 checks they still land in <>C); the asynchronous Omega reductions of";
  Tables.note "Chandra et al. and Chu 'are expensive ... every process sends messages";
  Tables.note "periodically to all processes'."

(* ------------------------------------------------------------------ *)
(* E9 — Theorem 1 at scale: the transformation across random runs     *)
(* ------------------------------------------------------------------ *)

let e9 () =
  Tables.heading "E9" "Theorem 1 across random systems: transformation output is <>P";
  let trials = 50 in
  let results =
    par_map (List.init trials Fun.id) (fun i ->
        let seed = 1009 * (i + 1) in
        let rng = Sim.Rng.create ~seed in
        let n = 3 + Sim.Rng.int rng ~bound:7 in
        let gst = Sim.Rng.int rng ~bound:500 in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:600 in
        let net = { (Scenario.chaotic_net ~seed ~gst ()) with delta = 8 } in
        let engine = Scenario.engine ~net ~n () in
        Sim.Fault.apply engine crashes;
        let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
        let ec = Ecfd.Ec.of_leader_s base ~engine in
        let p = Ecfd.Ec_to_p.install engine ~underlying:ec Ecfd.Ec_to_p.default_params in
        Sim.Engine.run_until engine 15_000;
        let run =
          Spec.Fd_props.make_run ~component:(Fd.Fd_handle.component p) ~n
            (Sim.Engine.trace engine)
        in
        let ok = Spec.Fd_props.satisfies_class Fd.Classes.P_eventual run in
        let since =
          match
            Spec.Eventually.all
              [
                (Spec.Fd_props.strong_completeness run).Spec.Fd_props.since;
                (Spec.Fd_props.eventual_strong_accuracy run).Spec.Fd_props.since;
              ]
          with
          | Some t -> t
          | None -> -1
        in
        (ok, since, gst, Sim.Fault.last_crash_time crashes))
  in
  let ok_count = List.length (List.filter (fun (ok, _, _, _) -> ok) results) in
  let lags =
    List.filter_map
      (fun (ok, since, gst, last_crash) ->
        if ok then Some (Stdlib.max 0 (since - Stdlib.max gst last_crash)) else None)
      results
  in
  Tables.table
    ~headers:[ "random runs"; "<>P holds"; "mean settle lag after max(GST, last crash)" ]
    ~rows:[ [ Tables.fi trials; Tables.fi ok_count; Tables.ff (Tables.mean lags) ^ " ticks" ] ];
  Tables.note "Each run: n in 3..9, GST in 0..500, random minority crash schedule,";
  Tables.note "chaotic pre-GST delays.  'Settle lag' = how long after the system calms";
  Tables.note "down the output satisfies both <>P properties for good."

(* ------------------------------------------------------------------ *)
(* E10 — Theorem 2 at scale: <>C consensus across random runs         *)
(* ------------------------------------------------------------------ *)

let e10 () =
  Tables.heading "E10" "Theorem 2 across random systems: <>C consensus solves Uniform Consensus";
  let trials = 100 in
  let outcomes =
    par_map (List.init trials Fun.id) (fun i ->
        let seed = 7919 * (i + 1) in
        let rng = Sim.Rng.create ~seed in
        let n = 3 + Sim.Rng.int rng ~bound:7 in
        let gst = Sim.Rng.int rng ~bound:400 in
        let crashes = Sim.Fault.random_minority rng ~n ~latest:400 in
        let net = { (Scenario.chaotic_net ~seed ~gst ()) with delta = 8 } in
        let r =
          Scenario.run_consensus ~net ~crashes ~horizon:20_000 ~n
            ~detector:Scenario.Ec_from_leader
            ~protocol:(Scenario.Ec Ecfd.Ec_consensus.default_params) ()
        in
        let violations = Spec.Consensus_props.check_all r.Scenario.trace ~n in
        ( violations = [],
          Spec.Consensus_props.decision_round r.Scenario.trace,
          Spec.Consensus_props.last_decision_time r.Scenario.trace,
          gst ))
  in
  let ok = List.length (List.filter (fun (ok, _, _, _) -> ok) outcomes) in
  let rounds = List.filter_map (fun (_, r, _, _) -> r) outcomes in
  let lag =
    List.filter_map
      (fun (_, _, t, gst) -> Option.map (fun t -> Stdlib.max 0 (t - gst)) t)
      outcomes
  in
  Tables.table
    ~headers:
      [ "random runs"; "all 4 properties"; "mean decision round"; "mean decision lag after GST" ]
    ~rows:
      [
        [
          Tables.fi trials;
          Tables.fi ok;
          Tables.ff (Tables.mean rounds);
          Tables.ff (Tables.mean lag) ^ " ticks";
        ];
      ];
  Tables.note "Each run: n in 3..9, random minority crashes, random GST, chaotic pre-GST";
  Tables.note "delays.  Termination, uniform agreement, uniform integrity and validity are";
  Tables.note "checked on every run (f < n/2, as Theorem 2 requires)."

(* ------------------------------------------------------------------ *)
(* E11 — extension: stable leader election [2] vs order-based [16]    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  Tables.heading "E11"
    "Leadership stability (extension): stable election [2] vs order-based [16]";
  let n = 6 in
  (* Scenario A — the one stability is about: a low-id process is muffled
     (its outgoing messages all lost) for a window after things were calm,
     then comes back.  The order-based election hands leadership back to it;
     the stable election keeps the incumbent. *)
  let muffled_comeback ~seed detector_install component =
    let blackout_from = 500 and blackout_to = 900 in
    let base = Sim.Link.reliable ~min_delay:1 ~max_delay:8 () in
    let link =
      Sim.Link.route ~describe:"muffle-p1" (fun ~src ~dst:_ ->
          if Sim.Pid.equal src 0 then
            {
              Sim.Link.describe = "p1-muffled";
              fate =
                (fun ~rng ~now ~src ~dst ->
                  if now >= blackout_from && now <= blackout_to then Sim.Link.Drop
                  else base.Sim.Link.fate ~rng ~now ~src ~dst);
              min_delay = Sim.Link.min_delay_bound base;
            }
          else base)
    in
    let engine = Sim.Engine.create ~seed ~n ~link () in
    detector_install engine;
    Sim.Engine.run_until engine 6000;
    let run = Spec.Fd_props.make_run ~component ~n (Sim.Engine.trace engine) in
    let observer = n - 1 in
    let changes_after t0 =
      List.length
        (List.filter
           (fun (at, _, v) ->
             ignore (v : Fd.Fd_view.t);
             at > t0)
           (let tl = Spec.Eventually.of_views ~component run.Spec.Fd_props.trace ~pid:observer in
            let rec switches prev acc = function
              | [] -> acc
              | (at, (v : Fd.Fd_view.t)) :: rest ->
                if Option.equal Sim.Pid.equal v.Fd.Fd_view.trusted prev then
                  switches prev acc rest
                else switches v.Fd.Fd_view.trusted ((at, prev, v) :: acc) rest
            in
            switches None [] tl))
    in
    ( Spec.Fd_props.eventual_leader run,
      changes_after blackout_to,
      Spec.Fd_props.demotions_of_live_leaders run observer )
  in
  let leader_install engine = ignore (Fd.Leader_s.install engine Fd.Leader_s.default_params) in
  let stable_install engine = ignore (Fd.Stable_omega.install engine Fd.Stable_omega.default_params) in
  let rows_a =
    let grid =
      par_map2
        [ (leader_install, Fd.Leader_s.component); (stable_install, Fd.Stable_omega.component) ]
        seeds
        (fun (install, component) seed -> muffled_comeback ~seed install component)
    in
    let collect results =
      let final_leaders =
        List.sort_uniq (Option.compare Sim.Pid.compare) (List.map (fun (l, _, _) -> l) results)
      in
      let changes = Tables.mean (List.map (fun (_, c, _) -> c) results) in
      let demotions = Tables.mean (List.map (fun (_, _, d) -> d) results) in
      ( String.concat "/"
          (List.map
             (function Some l -> Sim.Pid.to_string l | None -> "-")
             final_leaders),
        changes,
        demotions )
    in
    match List.map collect grid with
    | [ (pl, pc, pd); (sl, sc, sd) ] ->
      [
        [ "A: p1 muffled 500-900,"; "order-based [16]"; pl; Tables.ff pc; Tables.ff pd ];
        [ "   then returns"; "stable [2]"; sl; Tables.ff sc; Tables.ff sd ];
      ]
    | _ -> assert false
  in
  (* Scenario B — real crash of the leader: both should switch exactly once
     (counted at the observer after the crash instant). *)
  let failover_grid =
    par_map2 [ Scenario.Leader_s; Scenario.Stable_omega ] seeds (fun detector seed ->
        let net = { Scenario.default_net with seed } in
        let _, run, _ =
          Scenario.fd_run ~net ~crashes:(Sim.Fault.crash 0 ~at:1000) ~horizon:6000 ~n
            ~detector ()
        in
        ( Spec.Fd_props.leader_changes run (n - 1),
          Spec.Fd_props.demotions_of_live_leaders run (n - 1) ))
  in
  let crash_failover results =
    (Tables.mean (List.map fst results), Tables.mean (List.map snd results))
  in
  let (pc, pd), (sc, sd) =
    match List.map crash_failover failover_grid with
    | [ p; s ] -> (p, s)
    | _ -> assert false
  in
  let rows_b =
    [
      [ "B: calm net, leader"; "order-based [16]"; "p2"; Tables.ff pc; Tables.ff pd ];
      [ "   crashes at t=1000"; "stable [2]"; "p2"; Tables.ff sc; Tables.ff sd ];
    ]
  in
  Tables.table
    ~headers:
      [ "scenario"; "election"; "final leader"; "changes (post-event)"; "live demotions" ]
    ~rows:(rows_a @ rows_b);
  Tables.note "n=%d, mean over %d seeds, observed at the last process.  The <>C paper"
    n (List.length seeds);
  Tables.note "points to Aguilera et al. [2] for stability: once elected, a leader should";
  Tables.note "stay in charge while it is alive and timely.  In scenario A the order-based";
  Tables.note "election of [16] hands leadership back to the returning p1 (a demotion of";
  Tables.note "the perfectly healthy incumbent); the accusation-epoch election keeps the";
  Tables.note "incumbent and changes leaders (essentially) only on real crashes (B).";
  Tables.note "Both cost n-1 messages per period and plug into the same Section 3";
  Tables.note "construction to yield <>C; fewer spurious coordinator changes means fewer";
  Tables.note "wasted consensus rounds (Section 2.2's 'unique leader for long enough')."

(* ------------------------------------------------------------------ *)
(* E12 — extension: Omega where <>P is impossible ([3], Section 1.1)  *)
(* ------------------------------------------------------------------ *)

let e12 () =
  Tables.heading "E12"
    "Omega under weak synchrony (extension; [3]): one timely source is enough";
  let n = 5 in
  let source = 2 in
  let horizon = 30_000 in
  let fabric =
    let timely = Sim.Link.reliable ~min_delay:1 ~max_delay:8 () in
    let silent = Sim.Link.growing_blackouts () in
    Sim.Link.route ~describe:"eventual-source" (fun ~src ~dst:_ ->
        if Sim.Pid.equal src source then timely else silent)
  in
  let run_detector install component seed =
    let engine = Sim.Engine.create ~seed ~n ~link:fabric () in
    install engine;
    Sim.Engine.run_until engine horizon;
    Spec.Fd_props.make_run ~component ~n (Sim.Engine.trace engine)
  in
  let row label runs =
    let late_changes =
      Tables.mean
        (List.map (fun run -> Spec.Fd_props.leader_changes_after run (n - 1) ~after:(horizon / 2)) runs)
    in
    let leaders =
      List.sort_uniq (Option.compare Sim.Pid.compare) (List.map Spec.Fd_props.eventual_leader runs)
    in
    let late_false =
      Tables.mean
        (List.map
           (fun run -> Spec.Fd_props.false_suspicion_events_after run ~after:(horizon / 2))
           runs)
    in
    [
      label;
      String.concat "/"
        (List.map (function Some l -> Sim.Pid.to_string l | None -> "-") leaders);
      Tables.ff late_changes;
      Tables.ff late_false;
    ]
  in
  let detectors =
    [
      ( "counter-based Omega [3]",
        (fun e -> ignore (Fd.Omega_source.install e Fd.Omega_source.default_params)),
        Fd.Omega_source.component );
      ( "order-based leader <>S [16]",
        (fun e -> ignore (Fd.Leader_s.install e Fd.Leader_s.default_params)),
        Fd.Leader_s.component );
      ( "heartbeat <>P [6]",
        (fun e -> ignore (Fd.Heartbeat_p.install e Fd.Heartbeat_p.default_params)),
        Fd.Heartbeat_p.component );
    ]
  in
  let grid =
    par_map2 detectors seeds (fun (_, install, component) seed ->
        run_detector install component seed)
  in
  let rows = List.map2 (fun (label, _, _) runs -> row label runs) detectors grid in
  Tables.table
    ~headers:
      [ "detector"; "final leader"; "late leader changes"; "late false suspicions" ]
    ~rows;
  Tables.note "System: only p3's (pid 2) output links are timely; every other link";
  Tables.note "suffers ever-growing silence windows (fair but never timely), n=%d," n;
  Tables.note "%d seeds, horizon %d, 'late' = after t=%d."
    (List.length seeds) horizon (horizon / 2);
  Tables.note "The counter-based election settles on the source and never moves again";
  Tables.note "(0 late changes; its Omega-grade suspicions are not accuracy-relevant).";
  Tables.note "The order-based election hands leadership back to p1 after every silence";
  Tables.note "window, forever.  The heartbeat <>P keeps freshly (and wrongly)";
  Tables.note "suspecting correct processes deep into the run: no time-out discipline";
  Tables.note "achieves <>P accuracy here.  Omega — hence <>C's leader half — is thus";
  Tables.note "implementable where <>P is not (Aguilera et al. [3], cited in S1.1)."

(* ------------------------------------------------------------------ *)
(* E13 — ablation: decision latency vs number of crashes              *)
(* ------------------------------------------------------------------ *)

let e13 () =
  Tables.heading "E13"
    "Robustness sweep (ablation): decision latency and rounds vs crash count";
  let n = 9 in
  let ec = Scenario.Ec Ecfd.Ec_consensus.default_params in
  let protocols =
    [ ("<>C", ec); ("CT", Scenario.Ct); ("MR", Scenario.Mr); ("HR", Scenario.Hr) ]
  in
  let fs = [ 0; 1; 2; 3; 4 ] in
  let grid =
    par_map3 fs protocols seeds (fun f (_, protocol) seed ->
        (* Crash the first f processes at t=0, before they can even
           propose: they are the initial leader and the first rotating
           coordinators, so every protocol is hit where it hurts. *)
        let crashes = Sim.Fault.crashes (List.init f (fun i -> (i, 0))) in
        let r =
          Scenario.run_consensus
            ~net:{ Scenario.default_net with seed }
            ~crashes ~horizon:20_000 ~n ~detector:Scenario.Ec_from_leader ~protocol ()
        in
        match
          ( Spec.Consensus_props.last_decision_time r.Scenario.trace,
            Spec.Consensus_props.decision_round r.Scenario.trace )
        with
        | Some t, Some round when Spec.Consensus_props.check_all r.Scenario.trace ~n = [] ->
          Some (t, round)
        | _ -> None)
  in
  let cell per_seed =
    match List.filter_map Fun.id per_seed with
    | [] -> "failed"
    | results ->
      Printf.sprintf "%s / %s"
        (Tables.ff (Tables.mean (List.map fst results)))
        (Tables.ff (Tables.mean (List.map snd results)))
  in
  let rows =
    List.map2 (fun f per_protocol -> Tables.fi f :: List.map cell per_protocol) fs grid
  in
  Tables.table
    ~headers:("crashes f" :: List.map fst protocols)
    ~rows;
  Tables.note "Cells: mean time-to-last-decision (ticks) / mean decision round, %d seeds,"
    (List.length seeds);
  Tables.note "n=%d (tolerates f <= 4): p1..pf crash at t=0 — the initial leader and the" n;
  Tables.note "first rotating coordinators.  Detector: ec-from-leader.  All runs satisfied";
  Tables.note "Uniform Consensus; the sweep shows how each protocol absorbs the loss:";
  Tables.note "everyone waits for the detector to re-elect (the time component), and the";
  Tables.note "rotating-coordinator protocols additionally burn a round per dead";
  Tables.note "coordinator they stumble over (the round component grows with f)."

(* ------------------------------------------------------------------ *)
(* E14 — Section 4: "eventually only these links carry messages"      *)
(* ------------------------------------------------------------------ *)

let e14 () =
  Tables.heading "E14"
    "Link quiescence (Section 4): steady state uses only the leader's star";
  let window = 1000 in
  let measure ~n build components =
    let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 7 } ~n () in
    build engine;
    Sim.Engine.run_until engine (3000 + window);
    Spec.Link_metrics.active_links (Sim.Engine.trace engine) ~components ~from_t:3000
      ~to_t:(3000 + window)
  in
  let cells =
    par_map2 sweep_ns [ `Transformation; `Ring; `Heartbeat ] (fun n impl ->
        match impl with
        | `Transformation ->
          measure ~n
            (fun engine ->
              let hooks = Fd.Leader_s.make_hooks () in
              let base = Fd.Leader_s.install ~hooks engine Fd.Leader_s.default_params in
              let ec = Ecfd.Ec.of_leader_s base ~engine in
              ignore
                (Ecfd.Ec_to_p.install_piggybacked engine ~hooks ~underlying:ec
                   Ecfd.Ec_to_p.default_params))
            [ Fd.Leader_s.component; Ecfd.Ec_to_p.component ]
        | `Ring ->
          measure ~n
            (fun engine -> ignore (Fd.Ring_s.install engine Fd.Ring_s.default_params))
            [ Fd.Ring_s.component ]
        | `Heartbeat ->
          measure ~n
            (fun engine -> ignore (Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params))
            [ Fd.Heartbeat_p.component ])
  in
  let rows =
    List.concat
      (List.map2
         (fun n per_impl ->
           match per_impl with
           | [ transformation_links; ring_links; heartbeat_links ] ->
             let star = Spec.Link_metrics.star_of ~leader:0 ~n in
             [
               [ Tables.fi n; "Fig. 2 (piggybacked) + leader <>S";
                 Printf.sprintf "2(n-1) = %d" (2 * (n - 1));
                 Tables.fi (List.length transformation_links);
                 (if List.equal (fun (a, b) (c, d) -> Sim.Pid.equal a c && Sim.Pid.equal b d) transformation_links star then "= leader star" else "NOT the star") ];
               [ ""; "ring <>S [15]"; Printf.sprintf "2n = %d" (2 * n);
                 Tables.fi (List.length ring_links); "ring edges" ];
               [ ""; "heartbeat <>P [6]"; Printf.sprintf "n(n-1) = %d" (n * (n - 1));
                 Tables.fi (List.length heartbeat_links); "complete graph" ];
             ]
           | _ -> assert false)
         sweep_ns cells)
  in
  Tables.table
    ~headers:[ "n"; "implementation"; "paper active links"; "measured"; "shape" ]
    ~rows;
  Tables.note "Distinct directed links carrying at least one message during a 1000-tick";
  Tables.note "steady-state window (t in [3000, 4000], leader p1, failure-free).";
  Tables.note "Section 4's claim — 'eventually only these links carry messages', i.e. the";
  Tables.note "n-1 links into the leader and the n-1 out of it — holds exactly: the";
  Tables.note "transformation's active set IS the leader's star, against the ring's 2n";
  Tables.note "cycle edges and the heartbeat detector's complete graph."

(* ------------------------------------------------------------------ *)
(* E15 — Section 5.4's closing point, generalised: noise tolerance    *)
(* ------------------------------------------------------------------ *)

let e15 () =
  Tables.heading "E15"
    "Suspicion-noise sweep: majority-of-ACKs vs first-majority under random NACKs";
  let n = 9 in
  let majority = (n / 2) + 1 in
  let horizon = 8000 in
  let trials = 20 in
  (* Each non-leader process independently suspects the (otherwise stable,
     accurate) leader with probability q, permanently: the fraction of
     NACKers per run is random.  The paper: "even if the detector is not
     stable, Consensus can be reached if the appropriate conditions are
     met" — the extended wait turns 'fewer than a majority of NACKers' into
     a round-1 decision; the strict rule usually blocks on the first NACK. *)
  let run_noise ~q ~seed params =
    let rng = Sim.Rng.create ~seed in
    let nackers =
      List.filter (fun p -> not (Sim.Pid.equal p 0) && Sim.Rng.bool rng ~p:q) (Sim.Pid.all ~n)
    in
    let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
    let accurate = Fd.Scripted.accurate_stable ~leader:0 ~crashed:Sim.Pid.Set.empty in
    let nacker_view = Fd.Fd_view.make ~trusted:0 ~suspected:(Sim.Pid.set_of_list [ 0 ]) () in
    let fd =
      Fd.Scripted.install engine
        ~initial:(fun p -> if List.mem p nackers then nacker_view else accurate p)
        ~steps:[] ()
    in
    let rb = Broadcast.Reliable_broadcast.create engine in
    let inst = Ecfd.Ec_consensus.install engine ~fd ~rb params in
    List.iter (fun p -> inst.Consensus.Instance.propose p (100 + p)) (Sim.Pid.all ~n);
    Sim.Engine.run_until engine horizon;
    ( List.length nackers,
      Spec.Consensus_props.decision_round (Sim.Engine.trace engine) )
  in
  let extended = { Ecfd.Ec_consensus.default_params with max_rounds = 2000 } in
  let strict =
    { extended with Ecfd.Ec_consensus.wait_mode = Ecfd.Ec_consensus.Strict_majority }
  in
  let pct k = Printf.sprintf "%d%%" (100 * k / trials) in
  let qs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let grid =
    par_map3 qs [ extended; strict ]
      (List.init trials (fun i -> i + 1))
      (fun q params seed -> run_noise ~q ~seed params)
  in
  let rows =
    List.map2
      (fun q per_params ->
        match per_params with
        | [ ext; str ] ->
          let decided rs = List.length (List.filter (fun (_, r) -> r <> None) rs) in
          let decidable =
            List.length (List.filter (fun (k, _) -> n - 1 - k + 1 >= majority) ext)
          in
          [
            Printf.sprintf "%.1f" q;
            pct decidable;
            pct (decided ext);
            pct (decided str);
          ]
        | _ -> assert false)
      qs grid
  in
  Tables.table
    ~headers:
      [ "P(wrongly suspect leader)"; "ACK-majority exists"; "<>C extended decides";
        "<>C strict decides" ]
    ~rows;
  Tables.note "n=%d (majority %d), %d runs per row, stable accurate leader p1; each other"
    n majority trials;
  Tables.note "process independently NACKs it forever with probability q.  The extended";
  Tables.note "wait decides in exactly the runs where a majority of ACKs exists at all";
  Tables.note "(the information-theoretic best); the strict first-majority rule collapses";
  Tables.note "as soon as any NACKer exists, because its NACK beats the ACKs to the";
  Tables.note "coordinator every round.  This quantifies Section 5.4's closing claim."

(* ------------------------------------------------------------------ *)
(* E16 — extension: the <>C stack over fair-lossy links               *)
(* ------------------------------------------------------------------ *)

let e16 () =
  Tables.heading "E16"
    "Message loss (extension): the <>C stack raw vs over stubborn channels";
  let n = 5 in
  let horizon = 40_000 in
  let run ~drop ~seed ~stubborn =
    let link =
      Sim.Link.fair_lossy ~drop_probability:drop
        ~underlying:(Sim.Link.reliable ~min_delay:1 ~max_delay:5 ())
    in
    let engine = Sim.Engine.create ~seed ~n ~link () in
    let base = Fd.Leader_s.install engine Fd.Leader_s.default_params in
    let ec = Ecfd.Ec.of_leader_s base ~engine in
    let rb, transport =
      if stubborn then begin
        let st_rb = Broadcast.Stubborn.create ~component:"stubborn.rb" engine in
        let st_cons = Broadcast.Stubborn.create ~component:"stubborn.cons" engine in
        (Broadcast.Reliable_broadcast.create ~transport:(`Stubborn st_rb) engine,
         `Stubborn st_cons)
      end
      else (Broadcast.Reliable_broadcast.create engine, `Engine)
    in
    let inst =
      Ecfd.Ec_consensus.install ~transport engine ~fd:ec ~rb
        { Ecfd.Ec_consensus.default_params with max_rounds = 5000 }
    in
    List.iter (fun p -> inst.Consensus.Instance.propose p (100 + p)) (Sim.Pid.all ~n);
    Sim.Engine.run_until engine horizon;
    let trace = Sim.Engine.trace engine in
    let ok = Spec.Consensus_props.check_all trace ~n = [] in
    (ok, Spec.Consensus_props.last_decision_time trace)
  in
  let cell results =
    let ok = List.length (List.filter fst results) in
    match List.filter_map snd results with
    | [] -> Printf.sprintf "%d/%d ok, no decisions" ok (List.length seeds)
    | times ->
      Printf.sprintf "%d/%d ok, ~%s ticks" ok (List.length seeds) (Tables.ff (Tables.mean times))
  in
  let drops = [ 0.0; 0.2; 0.4; 0.6 ] in
  let grid =
    par_map3 drops [ false; true ] seeds (fun drop stubborn seed -> run ~drop ~seed ~stubborn)
  in
  let rows =
    List.map2
      (fun drop per_stubborn ->
        match per_stubborn with
        | [ raw; stubborn ] ->
          [ Printf.sprintf "%.0f%%" (100.0 *. drop); cell raw; cell stubborn ]
        | _ -> assert false)
      drops grid
  in
  Tables.table
    ~headers:[ "loss rate"; "raw one-shot messages"; "stubborn channels" ]
    ~rows;
  Tables.note "n=%d, %d seeds per cell, horizon %d.  The raw stack tolerates surprising"
    n (List.length seeds) horizon;
  Tables.note "loss (a round only needs majority paths, failed rounds retry, and the";
  Tables.note "detector's traffic is periodic anyway), but it degrades with luck; the";
  Tables.note "retransmitting transport keeps every run deciding quickly.  Fig. 2 needed";
  Tables.note "no retransmission because its traffic is periodic by construction — this";
  Tables.note "extension supplies the analogous guarantee to the one-shot consensus";
  Tables.note "messages (cf. quiescent reliable communication, Aguilera et al. [1])."

(* ------------------------------------------------------------------ *)
(* E17 — application layer: replicated-log commit latency             *)
(* ------------------------------------------------------------------ *)

let e17 () =
  Tables.heading "E17"
    "Replicated log over repeated <>C consensus: commit latency and slot efficiency";
  let commands = 20 in
  let measure ~n ~seed =
    let engine = Scenario.engine ~net:{ Scenario.default_net with seed } ~n () in
    let fd = Scenario.install_detector engine Scenario.Ec_from_leader in
    let make_instance ~slot =
      let suffix = Printf.sprintf ".slot%d" slot in
      let rb =
        Broadcast.Reliable_broadcast.create
          ~component:(Broadcast.Reliable_broadcast.default_component ^ suffix)
          engine
      in
      Ecfd.Ec_consensus.install
        ~component:(Ecfd.Ec_consensus.component ^ suffix)
        engine ~fd ~rb Ecfd.Ec_consensus.default_params
    in
    let order = Consensus.Total_order.create ~max_slots:48 engine ~make_instance () in
    let submit_time = Hashtbl.create 32 in
    let delivery = Hashtbl.create 32 in
    (* Record the instant each message is delivered everywhere. *)
    List.iter
      (fun p ->
        Consensus.Total_order.subscribe order p (fun m ->
            let key = m.Consensus.Total_order.body in
            let seen = Option.value ~default:0 (Hashtbl.find_opt delivery key) in
            Hashtbl.replace delivery key (seen + 1);
            if seen + 1 = n then
              Hashtbl.replace delivery key (-Sim.Engine.now engine)))
      (Sim.Pid.all ~n);
    for i = 0 to commands - 1 do
      let src = i mod n in
      let at = 40 * i in
      Sim.Engine.at engine at (fun () ->
          Hashtbl.replace submit_time (900 + i) at;
          Consensus.Total_order.broadcast order ~src ~body:(900 + i))
    done;
    Sim.Engine.run_until engine 30_000;
    let latencies =
      (* Sorted: the float mean below folds left-to-right, so bucket order
         would otherwise leak into the last rounding bit. *)
      Hashtbl.fold
        (fun key state acc ->
          if state < 0 then
            match Hashtbl.find_opt submit_time key with
            | Some t0 -> (-state - t0) :: acc
            | None -> acc
          else acc)
        delivery []
      |> List.sort Int.compare
    in
    let slots =
      List.fold_left
        (fun acc p -> Stdlib.max acc (Consensus.Total_order.slots_used order p))
        0 (Sim.Pid.all ~n)
    in
    (List.length latencies, Tables.mean latencies, slots)
  in
  let log_ns = [ 3; 5; 7 ] in
  let grid = par_map2 log_ns seeds (fun n seed -> measure ~n ~seed) in
  let rows =
    List.map2
      (fun n results ->
        let committed = Tables.mean (List.map (fun (c, _, _) -> c) results) in
        let latency =
          List.fold_left (fun acc (_, l, _) -> acc +. l) 0.0 results
          /. float_of_int (List.length results)
        in
        let slots = Tables.mean (List.map (fun (_, _, s) -> s) results) in
        [
          Tables.fi n;
          Printf.sprintf "%.1f / %d" committed commands;
          Printf.sprintf "%.1f ticks" latency;
          Printf.sprintf "%.1f (for %d commands)" slots commands;
        ])
      log_ns grid
  in
  Tables.table
    ~headers:[ "n"; "committed everywhere"; "mean commit latency"; "slots consumed" ]
    ~rows;
  Tables.note "%d commands submitted 40 ticks apart at rotating replicas, %d seeds."
    commands (List.length seeds);
  Tables.note "Commit latency = submission until delivery at ALL replicas.  One consensus";
  Tables.note "instance per slot; a slot can be 'wasted' when a command wins a slot while";
  Tables.note "also pending elsewhere (slots > commands measures that overhead).  This is";
  Tables.note "the application-layer face of the paper's one-round stable-case claim:";
  Tables.note "latency stays a small constant (a few message delays) at every n."

(* ------------------------------------------------------------------ *)
(* E18 — substrate: engine lifecycle accounting under a full FD stack *)
(* ------------------------------------------------------------------ *)

let e18 () =
  Tables.heading "E18"
    "Engine resource accounting: timer-table residency is O(in-flight), not O(run length)";
  let measure ~n ~horizon =
    let engine = Scenario.engine ~net:{ Scenario.default_net with seed = 23 } ~n () in
    let _ = Fd.Heartbeat_p.install engine Fd.Heartbeat_p.default_params in
    Sim.Engine.run_until engine horizon;
    let lc = Sim.Stats.lifecycle (Sim.Engine.stats engine) in
    ( lc.Sim.Stats.events_executed,
      lc.Sim.Stats.timers_set,
      lc.Sim.Stats.timers_reclaimed,
      Sim.Engine.timer_residency engine,
      Sim.Engine.timer_table_capacity engine,
      lc.Sim.Stats.queue_high_water )
  in
  let ns = [ 4; 8; 16 ] and horizons = [ 2_000; 20_000 ] in
  let cells = par_map2 ns horizons (fun n horizon -> measure ~n ~horizon) in
  let rows =
    List.concat
      (List.map2
         (fun n per_horizon ->
           List.map2
             (fun horizon (events, set, reclaimed, residency, capacity, hw) ->
               [
                 Tables.fi n;
                 Tables.fi horizon;
                 Tables.fi events;
                 Tables.fi set;
                 Tables.fi reclaimed;
                 Tables.fi residency;
                 Tables.fi capacity;
                 Tables.fi hw;
               ])
             horizons per_horizon)
         ns cells)
  in
  Tables.table
    ~headers:
      [ "n"; "horizon"; "events"; "timers set"; "reclaimed"; "residency"; "capacity"; "queue hw" ]
    ~rows;
  Tables.note "Residency and capacity depend on n (in-flight timers), not on the horizon:";
  Tables.note "a 10x longer run sets 10x more timers but occupies the same few slots.";
  Tables.note "The pre-registry engine kept one table entry per cancellation forever."

let e19 () =
  Tables.heading "E19"
    "Seed replay: same seed, flipped component-registration order, identical outputs";
  (* Two independent broadcasters over a draw-free synchronous link: flipping
     the order they are installed in permutes every same-instant event (and
     with it every hash table's insertion history) without changing what
     either component does.  Post R2, the observable outputs — the sorted
     Stats.snapshot and the Round_metrics tables — must be bit-identical. *)
  let install engine ~name ~period =
    let n = Sim.Engine.n engine in
    List.iter
      (fun p ->
        Sim.Engine.register engine ~component:name p (fun ~src:_ _ -> ());
        ignore
          (Sim.Engine.every engine p ~phase:1 ~period (fun () ->
               let round = 1 + (Sim.Engine.now engine mod 3) in
               Sim.Engine.send_to_all_others engine ~component:name
                 ~tag:(Printf.sprintf "ping.r%d" round)
                 ~src:p Sim.Payload.Blank)
            : unit -> unit))
      (Sim.Pid.all ~n)
  in
  let run order =
    let engine = Sim.Engine.create ~seed:11 ~n:4 ~link:(Sim.Link.synchronous ~delay:2) () in
    List.iter (fun (name, period) -> install engine ~name ~period) order;
    Sim.Engine.run_until engine 2_000;
    let trace = Sim.Engine.trace engine in
    ( Sim.Stats.snapshot (Sim.Engine.stats engine),
      Spec.Round_metrics.sends_by_round trace ~component:"alpha",
      (Sim.Stats.total (Sim.Engine.stats engine)).Sim.Stats.sent )
  in
  let (snap_ab, rounds_ab, sent_ab), (snap_ba, rounds_ba, sent_ba) =
    match par_map [ [ ("alpha", 5); ("beta", 7) ]; [ ("beta", 7); ("alpha", 5) ] ] run with
    | [ ab; ba ] -> (ab, ba)
    | _ -> assert false
  in
  Tables.table
    ~headers:[ "registration order"; "snapshot entries"; "messages sent" ]
    ~rows:
      [
        [ "alpha, beta"; Tables.fi (List.length snap_ab); Tables.fi sent_ab ];
        [ "beta, alpha"; Tables.fi (List.length snap_ba); Tables.fi sent_ba ];
      ];
  Tables.note "snapshots identical: %b; sends-by-round identical: %b"
    (snap_ab = snap_ba) (rounds_ab = rounds_ba);
  Tables.note "Pre-R2, Stats.snapshot surfaced Hashtbl bucket order and the two runs";
  Tables.note "diffed; ecfd-lint (dune build @lint) now rejects such escapes statically."

let all =
  [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16; e17; e18; e19 ]
