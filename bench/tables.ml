(* Plain-text table rendering for the experiment reports.  When the
   ECFD_CSV_DIR environment variable points at a directory, every table is
   also written there as <experiment-id>[-k].csv for plotting. *)

let current_id = ref "table"
let table_counter = ref 0

let heading id title =
  current_id := String.lowercase_ascii id;
  table_counter := 0;
  Format.printf "@.%s@." (String.make 78 '=');
  Format.printf "%s  %s@." id title;
  Format.printf "%s@.@." (String.make 78 '=')

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~headers ~rows =
  match Sys.getenv_opt "ECFD_CSV_DIR" with
  | None -> ()
  | Some dir ->
    incr table_counter;
    let suffix = if !table_counter = 1 then "" else Printf.sprintf "-%d" !table_counter in
    let file = Filename.concat dir (!current_id ^ suffix ^ ".csv") in
    let oc = open_out file in
    List.iter
      (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
      (headers :: rows);
    close_out oc

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table ~headers ~rows =
  write_csv ~headers ~rows;
  let all = headers :: rows in
  let columns = List.length headers in
  (* One pass over the cells — the previous List.nth-per-cell version was
     O(cols^2 * rows), noticeable on the wide sweep tables. *)
  let widths = Array.make columns 0 in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- Stdlib.max widths.(c) (String.length cell)))
    all;
  let print_row row =
    Format.printf "  |";
    List.iteri (fun c cell -> Format.printf " %*s |" widths.(c) cell) row;
    Format.printf "@."
  in
  let rule () =
    Format.printf "  +";
    Array.iter (fun w -> Format.printf "%s+" (String.make (w + 2) '-')) widths;
    Format.printf "@."
  in
  rule ();
  print_row headers;
  rule ();
  List.iter print_row rows;
  rule ()

let fi = string_of_int

let ff f = Printf.sprintf "%.1f" f

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 (List.map float_of_int xs) /. float_of_int (List.length xs)
