(* E22 — detector QoS / SLA rollups over E1-E4-style scenario sweeps.

   Each scenario is one detector-only run (Scenario.fd_run); the QoS fold
   (Obs.Qos via Sim.Trace_qos) turns its trace into detection-time,
   mistake-rate and availability figures, and Obs.Rollup renders the whole
   sweep as BENCH_qos.json (schema docs/schemas/qos.schema.json).  Every
   number here is a function of the trace alone — no wall clock — so both
   the table and the JSON are byte-identical at every --domains and
   --shards value, which is exactly what CI checks.  Compare two runs with
   `ecfd bench-diff old/BENCH_qos.json BENCH_qos.json`. *)

let json_file = "BENCH_qos.json"

(* The sweep: E1's chaotic single-crash matrix, a calm no-crash control
   (E2-style), a late-crash detection probe (E3-style) and a two-crash
   stress (E4-style), each over the three detector families the paper
   compares throughout. *)

type case = {
  case : string;
  net : Scenario.net;
  crashes : Sim.Fault.t;
  horizon : int;
}

let cases =
  [
    {
      case = "e1-chaotic-crash";
      net = { (Scenario.chaotic_net ~seed:1 ~gst:250 ()) with delta = 8 };
      crashes = Sim.Fault.crash 2 ~at:400;
      horizon = 2000;
    };
    {
      case = "e2-calm-no-crash";
      net = Scenario.default_net;
      crashes = Sim.Fault.none;
      horizon = 2000;
    };
    {
      case = "e3-late-crash";
      net = { (Scenario.chaotic_net ~seed:3 ~gst:250 ()) with delta = 8 };
      crashes = Sim.Fault.crash 1 ~at:1200;
      horizon = 2000;
    };
    {
      case = "e4-double-crash";
      net = { (Scenario.chaotic_net ~seed:4 ~gst:250 ()) with delta = 8 };
      crashes = Sim.Fault.crashes [ (2, 400); (4, 900) ];
      horizon = 2000;
    };
  ]

let detectors = [ Scenario.Heartbeat_p; Scenario.Ring_s; Scenario.Ec_from_leader ]

let n = 5

let run_one case detector =
  let handle, run, _stats =
    Scenario.fd_run ~net:case.net ~crashes:case.crashes ~horizon:case.horizon ~n ~detector ()
  in
  let component = Fd.Fd_handle.component handle in
  let report =
    Sim.Trace_qos.report ~component ~n ~horizon:case.horizon run.Spec.Fd_props.trace
  in
  {
    Obs.Rollup.name = Printf.sprintf "%s/%s" case.case (Scenario.detector_name detector);
    component;
    report;
  }

let e22 () =
  Tables.heading "E22" "Detector QoS and SLA rollups (Chen-Toueg metrics over E1-E4 sweeps)";
  let scenarios =
    Exec.Pool.run
      (List.concat_map
         (fun case -> List.map (fun d () -> run_one case d) detectors)
         cases)
  in
  let headers =
    [ "scenario"; "crashed"; "detected"; "TD mean"; "mistakes"; "rate/1k"; "avail %"; "leader" ]
  in
  let rows =
    List.map
      (fun (s : Obs.Rollup.scenario) ->
        let a = Obs.Rollup.aggregate s.report in
        [
          s.name;
          Tables.fi a.a_crashed;
          Tables.fi a.a_detected;
          (match a.a_detection_mean with None -> "-" | Some m -> Tables.ff m);
          Tables.fi a.a_mistakes;
          Printf.sprintf "%.3f" a.a_mistake_rate_per_1k;
          Printf.sprintf "%.3f" a.a_availability_pct;
          (match (a.a_leader_elected, a.a_steady_leader_at) with
          | false, _ -> "-"
          | true, Some t -> Printf.sprintf "t=%d" t
          | true, None -> "split");
        ])
      scenarios
  in
  Tables.table ~headers ~rows;
  Tables.note "TD = detection time (ticks); avail = correct-view time / accounting window.";
  Tables.note "full per-pair figures: %s (schema docs/schemas/qos.schema.json)" json_file;
  let oc = open_out json_file in
  output_string oc (Obs.Rollup.to_json scenarios);
  close_out oc
